// Node rejoin: transient failures, heartbeat-timeout detection, full
// block-report reconciliation against the re-replication pipeline, and the
// policies rebuilding their state from the surviving disk contents.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "common/invariant.h"
#include "core/elephant_trap.h"
#include "core/greedy_lru.h"
#include "core/lfu.h"
#include "net/profile.h"
#include "storage/datanode.h"

namespace dare::cluster {
namespace {

[[noreturn]] void throwing_handler(const InvariantViolation& v) {
  throw std::logic_error("invariant violated: " + v.message);
}

/// Installs a throwing invariant handler for the test's lifetime, so any
/// DARE_INVARIANT violation fails the test instead of aborting the binary.
class ThrowOnInvariant {
 public:
  ThrowOnInvariant() : previous_(set_invariant_handler(&throwing_handler)) {}
  ~ThrowOnInvariant() { set_invariant_handler(previous_); }

 private:
  InvariantHandler previous_;
};

workload::Workload small_workload(std::size_t jobs = 80,
                                  std::uint64_t seed = 21) {
  workload::WorkloadOptions opts;
  opts.num_jobs = jobs;
  opts.seed = seed;
  opts.catalog.small_files = 20;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 6;
  opts.catalog.large_max_blocks = 10;
  return workload::make_wl1(opts);
}

ClusterOptions base_options(PolicyKind policy = PolicyKind::kVanilla) {
  auto opts =
      paper_defaults(net::cct_profile(10), SchedulerKind::kFifo, policy);
  opts.rereplication_interval = from_seconds(1.0);
  opts.rereplication_batch = 64;
  return opts;
}

TEST(NodeRejoin, TransientFailureIsDetectedAndNodeReconciles) {
  ThrowOnInvariant guard;
  auto opts = base_options();
  // Down for 60 s: far past the detection timeout (3 missed 3 s
  // heartbeats), so the name node declares the death, repairs the blocks,
  // and the rejoin must reconcile the stale disk against the repairs.
  opts.failures.push_back({from_seconds(5.0), NodeId{2},
                           faults::FaultKind::kTransient,
                           from_seconds(60.0)});
  Cluster cluster(opts);
  const auto wl = small_workload(120);
  const auto result = cluster.run(wl);

  EXPECT_EQ(result.node_failures, 1u);
  EXPECT_EQ(result.transient_failures, 1u);
  EXPECT_EQ(result.permanent_failures, 0u);
  EXPECT_EQ(result.failures_detected, 1u);
  EXPECT_EQ(result.node_rejoins, 1u);
  // Detection is heartbeat-driven: at least K-1 full intervals must pass
  // before the name node can possibly notice (the node may have beaten
  // right before dying).
  EXPECT_GT(result.detection_latency_total_s, 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(result.mean_detection_latency_s,
                   result.detection_latency_total_s);
  // The node is back and re-registered.
  EXPECT_TRUE(cluster.name_node().is_node_alive(2));
  // Re-replication raced the 60 s outage and won for at least some blocks;
  // the rejoin then pruned the stale surplus copies.
  EXPECT_GT(result.rereplicated_blocks, 0u);
  EXPECT_GT(result.overreplication_prunes, 0u);
  EXPECT_EQ(result.blocks_lost, 0u);
  // After reconciliation every block sits at exactly its replication
  // factor: repairs restored it, rejoin pruning removed the excess.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      EXPECT_EQ(nn.static_locations(bid).size(), 3u) << "block " << bid;
    }
  }
  EXPECT_NO_THROW(cluster.validate());
}

TEST(NodeRejoin, BlipShorterThanDetectionTimeoutGoesUnnoticed) {
  ThrowOnInvariant guard;
  auto opts = base_options();
  // 3 s downtime < 9 s detection timeout: the name node must never notice,
  // no repair traffic, no location scrubbing — but the rebooted tracker
  // does not resume its tasks, so the node still counts one rejoin.
  opts.failures.push_back({from_seconds(10.0), NodeId{2},
                           faults::FaultKind::kTransient,
                           from_seconds(3.0)});
  Cluster cluster(opts);
  const auto result = cluster.run(small_workload(120));

  EXPECT_EQ(result.node_failures, 1u);
  EXPECT_EQ(result.failures_detected, 0u);
  EXPECT_EQ(result.node_rejoins, 1u);
  EXPECT_DOUBLE_EQ(result.detection_latency_total_s, 0.0);
  EXPECT_EQ(result.blocks_lost, 0u);
  EXPECT_TRUE(cluster.name_node().is_node_alive(2));
  EXPECT_NO_THROW(cluster.validate());
}

TEST(NodeRejoin, PermanentFailureNeverRejoins) {
  ThrowOnInvariant guard;
  auto opts = base_options();
  opts.failures.push_back({from_seconds(5.0), NodeId{3},
                           faults::FaultKind::kPermanent,
                           /*downtime=*/from_seconds(60.0)});  // ignored
  Cluster cluster(opts);
  const auto result = cluster.run(small_workload(120));

  EXPECT_EQ(result.permanent_failures, 1u);
  EXPECT_EQ(result.failures_detected, 1u);
  EXPECT_EQ(result.node_rejoins, 0u);
  EXPECT_FALSE(cluster.name_node().is_node_alive(3));
  EXPECT_NO_THROW(cluster.validate());
}

TEST(NodeRejoin, RejoiningPoliciesRebuildWithoutBudgetViolations) {
  // Satellite regression: a node with a full replication cache fails
  // transiently, re-replication repairs its blocks elsewhere, and the node
  // rejoins with stale replicas. The rebuilt policy state must respect the
  // budget audit (the data node itself checks it under
  // DARE_ENABLE_INVARIANTS) and repairs must never evict replicas of the
  // file being repaired — any violation throws here.
  for (const PolicyKind policy :
       {PolicyKind::kGreedyLru, PolicyKind::kElephantTrap}) {
    ThrowOnInvariant guard;
    auto opts = base_options(policy);
    opts.budget_fraction = 0.05;  // tiny budget: caches run full
    opts.trap.p = 1.0;            // trap aggressively, fill the cache
    opts.failures.push_back({from_seconds(10.0), NodeId{1},
                             faults::FaultKind::kTransient,
                             from_seconds(40.0)});
    Cluster cluster(opts);
    const auto result = cluster.run(small_workload(150));
    EXPECT_EQ(result.node_rejoins, 1u);
    EXPECT_NO_THROW(cluster.validate());
    for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
      EXPECT_LE(cluster.data_node(w).dynamic_bytes(),
                cluster.node_budget_bytes())
          << "policy " << policy_name(policy) << " node " << w;
    }
  }
}

TEST(NodeRejoin, GreedyLruRebuildRestoresTracking) {
  Rng rng(3);
  storage::DataNode dn(0, net::cct_profile(10).disk, rng);
  const storage::BlockMeta b1{1, 10, 100};
  const storage::BlockMeta b2{2, 11, 100};
  ASSERT_TRUE(dn.insert_dynamic(b1));
  ASSERT_TRUE(dn.insert_dynamic(b2));

  core::GreedyLruPolicy policy(dn, /*budget=*/200);
  policy.rebuild(dn.dynamic_block_metas());
  EXPECT_EQ(policy.tracked_blocks(), 2u);

  // The rebuilt queue is usable: a new non-local block evicts the coldest
  // surviving replica (lowest id — rebuild order) instead of corrupting
  // state.
  const storage::BlockMeta b3{3, 12, 100};
  EXPECT_TRUE(policy.on_map_task(b3, /*local=*/false));
  EXPECT_FALSE(dn.has_dynamic_block(b1.id));  // evicted
  EXPECT_TRUE(dn.has_dynamic_block(b2.id));
  EXPECT_TRUE(dn.has_dynamic_block(b3.id));
}

TEST(NodeRejoin, GreedyLruRebuildEmptyAfterPermanentLoss) {
  Rng rng(3);
  storage::DataNode dn(0, net::cct_profile(10).disk, rng);
  core::GreedyLruPolicy policy(dn, 200);
  ASSERT_TRUE(dn.insert_dynamic({1, 10, 100}));
  policy.rebuild(dn.dynamic_block_metas());
  EXPECT_EQ(policy.tracked_blocks(), 1u);
  dn.wipe_disk();
  policy.rebuild(dn.dynamic_block_metas());
  EXPECT_EQ(policy.tracked_blocks(), 0u);
}

TEST(NodeRejoin, LfuRebuildZeroesFrequencies) {
  Rng rng(3);
  storage::DataNode dn(0, net::cct_profile(10).disk, rng);
  const storage::BlockMeta b1{1, 10, 100};
  ASSERT_TRUE(dn.insert_dynamic(b1));
  core::GreedyLfuPolicy policy(dn, 200);
  policy.rebuild(dn.dynamic_block_metas());
  EXPECT_EQ(policy.tracked_blocks(), 1u);
  EXPECT_EQ(policy.frequency(b1.id), 0u);  // history died with the process
}

TEST(NodeRejoin, ElephantTrapRebuildResetsRingAndCounts) {
  Rng rng(3);
  storage::DataNode dn(0, net::cct_profile(10).disk, rng);
  const storage::BlockMeta b1{1, 10, 100};
  const storage::BlockMeta b2{2, 11, 100};
  ASSERT_TRUE(dn.insert_dynamic(b1));
  ASSERT_TRUE(dn.insert_dynamic(b2));
  Rng policy_rng(7);
  core::ElephantTrapPolicy policy(dn, 200, core::ElephantTrapParams{1.0, 1},
                                  policy_rng);
  policy.rebuild(dn.dynamic_block_metas());
  EXPECT_EQ(policy.tracked_blocks(), 2u);
  EXPECT_EQ(policy.access_count(b1.id), 0u);
  EXPECT_EQ(policy.access_count(b2.id), 0u);
  // The ring is live again: an insert under pressure ages and evicts.
  const storage::BlockMeta b3{3, 12, 100};
  EXPECT_TRUE(policy.on_map_task(b3, /*local=*/false));
  EXPECT_TRUE(dn.has_dynamic_block(b3.id));
  EXPECT_EQ(dn.dynamic_blocks().size(), 2u);  // one survivor was evicted
}

TEST(NodeRejoin, NameNodeRejectsRejoinOfLiveNode) {
  Rng rng(5);
  storage::NameNode nn(4, nullptr, rng);
  EXPECT_THROW(nn.node_rejoined(1, {}, {}), std::logic_error);
  EXPECT_THROW(nn.node_rejoined(99, {}, {}), std::out_of_range);
}

}  // namespace
}  // namespace dare::cluster
