// Calibration pins for the hardware profiles: the paper's Tables I-II
// numbers are encoded in cct_profile()/ec2_profile(), and several results
// (Fig. 10's larger cloud gains most of all) depend on their *ratios*.
// These tests fail loudly if a future tweak silently drifts the
// calibration away from the published measurements.
#include "net/profile.h"

#include <gtest/gtest.h>

namespace dare::net {
namespace {

TEST(Profiles, CctIsSingleRackDedicated) {
  const auto p = cct_profile(20);
  EXPECT_EQ(p.name, "cct");
  EXPECT_EQ(p.topology.kind, TopologyKind::kSingleRack);
  EXPECT_EQ(p.topology.nodes, 20u);
  EXPECT_EQ(p.latency.spike_max_ms, 2.2);  // Table I max 2.17 ms
  EXPECT_EQ(p.straggler_fraction, 0.0);    // headline runs unperturbed
}

TEST(Profiles, Ec2IsMultiRackVirtualized) {
  const auto p = ec2_profile(100);
  EXPECT_EQ(p.name, "ec2");
  EXPECT_EQ(p.topology.kind, TopologyKind::kMultiTier);
  EXPECT_GT(p.topology.racks, 20u);       // instances scattered widely
  EXPECT_GT(p.latency.spike_max_ms, 50.0); // Table I max 75.1 ms tail
  EXPECT_GT(p.bandwidth.degraded_probability, 0.0);
  EXPECT_GT(p.disk.burst_probability, 0.0);
  EXPECT_GT(p.bandwidth.rack_uplink_mbps, 0.0);  // oversubscription
}

TEST(Profiles, NetworkDiskRatiosMatchTable2) {
  // The decisive derived quantity (Section II-B): CCT net/disk ~74.6%,
  // EC2 ~51.75% — CCT's ratio must be roughly 40% higher.
  const auto cct = cct_profile(20);
  const auto ec2 = ec2_profile(20);
  const double cct_ratio = cct.bandwidth.mean / cct.disk.mean;
  // EC2's realized disk mean is pulled up by bursts; use the paper's
  // reported means as the reference envelope instead of model internals.
  EXPECT_NEAR(cct_ratio, 0.746, 0.05);
  EXPECT_GT(cct.disk.mean, 150.0);
  EXPECT_LT(ec2.bandwidth.mean, 85.0);  // Table II: EC2 net mean 73.2
}

TEST(Profiles, DiskEnvelopesMatchTable2) {
  const auto cct = cct_profile(20);
  EXPECT_NEAR(cct.disk.floor, 145.0, 1.0);    // Table II min 145.3
  EXPECT_NEAR(cct.disk.ceiling, 167.0, 1.0);  // Table II max 167.0
  const auto ec2 = ec2_profile(20);
  EXPECT_NEAR(ec2.disk.floor, 67.1, 0.5);     // Table II min 67.1
  EXPECT_NEAR(ec2.disk.ceiling, 357.9, 0.5);  // Table II max 357.9
}

TEST(Profiles, BandwidthEnvelopesMatchTable2) {
  const auto cct = cct_profile(20);
  EXPECT_LE(cct.bandwidth.ceiling, 118.0);  // Table II max 118.0
  EXPECT_GE(cct.bandwidth.floor, 110.0);
  const auto ec2 = ec2_profile(20);
  EXPECT_NEAR(ec2.bandwidth.floor, 5.8, 0.1);      // Table II min 5.8
  EXPECT_NEAR(ec2.bandwidth.ceiling, 109.9, 0.1);  // Table II max 109.9
}

TEST(Profiles, NodeCountIsParameterized) {
  EXPECT_EQ(cct_profile(8).topology.nodes, 8u);
  EXPECT_EQ(ec2_profile(100).topology.nodes, 100u);
  // Rack count scales with allocation size.
  EXPECT_GT(ec2_profile(100).topology.racks, ec2_profile(20).topology.racks);
}

}  // namespace
}  // namespace dare::net
