// Fault-tolerance tests: node failures, task re-execution, name-node
// re-replication, and DARE's contribution to availability (Section IV-B:
// dynamic replicas are first-order replicas and count toward availability).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "common/rng.h"
#include "metrics/run_metrics.h"

namespace dare::cluster {
namespace {

workload::Workload small_workload(std::size_t jobs = 80,
                                  std::uint64_t seed = 21) {
  workload::WorkloadOptions opts;
  opts.num_jobs = jobs;
  opts.seed = seed;
  opts.catalog.small_files = 20;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 6;
  opts.catalog.large_max_blocks = 10;
  return workload::make_wl1(opts);
}

ClusterOptions failing_options(PolicyKind policy, double fail_at_s,
                               NodeId victim = 2) {
  ClusterOptions opts =
      paper_defaults(net::cct_profile(10), SchedulerKind::kFifo, policy);
  opts.failures.push_back({from_seconds(fail_at_s), victim});
  return opts;
}

TEST(FailureInjection, RunCompletesDespiteNodeLoss) {
  Cluster cluster(failing_options(PolicyKind::kVanilla, 5.0));
  const auto wl = small_workload();
  const auto result = cluster.run(wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) {
    EXPECT_GT(jm.completion, jm.arrival);
  }
}

TEST(FailureInjection, RunningTasksAreReexecuted) {
  // Fail a node mid-run under load; some tasks must have been requeued.
  Cluster cluster(failing_options(PolicyKind::kVanilla, 10.0));
  const auto result = cluster.run(small_workload(120));
  EXPECT_GT(result.task_reexecutions, 0u);
}

TEST(FailureInjection, NameNodeDropsDeadNodeReplicas) {
  Cluster cluster(failing_options(PolicyKind::kVanilla, 5.0, 3));
  (void)cluster.run(small_workload());
  const auto& nn = cluster.name_node();
  EXPECT_FALSE(nn.is_node_alive(3));
  // No block location may reference the dead node, except via repair (which
  // never targets dead nodes).
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      const auto& locs = nn.locations(bid);
      EXPECT_EQ(std::count(locs.begin(), locs.end(), NodeId{3}), 0);
    }
  }
}

TEST(FailureInjection, ReplicationFactorRestored) {
  auto opts = failing_options(PolicyKind::kVanilla, 5.0);
  opts.rereplication_interval = from_seconds(1.0);
  opts.rereplication_batch = 64;
  Cluster cluster(opts);
  const auto result = cluster.run(small_workload(150));
  EXPECT_GT(result.rereplicated_blocks, 0u);
  // After repair, every block is back at full replication.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      EXPECT_GE(nn.static_locations(bid).size(), 3u) << "block " << bid;
    }
  }
  EXPECT_EQ(result.blocks_lost, 0u);
}

TEST(FailureInjection, RereplicationCanBeDisabled) {
  auto opts = failing_options(PolicyKind::kVanilla, 5.0);
  opts.enable_rereplication = false;
  Cluster cluster(opts);
  const auto result = cluster.run(small_workload());
  EXPECT_EQ(result.rereplicated_blocks, 0u);
  // Some blocks stay under-replicated.
  const auto& nn = cluster.name_node();
  std::size_t under = 0;
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      if (nn.static_locations(bid).size() < 3) ++under;
    }
  }
  EXPECT_GT(under, 0u);
}

TEST(FailureInjection, MultipleFailuresSurvivable) {
  auto opts = failing_options(PolicyKind::kElephantTrap, 5.0, 1);
  opts.failures.push_back({from_seconds(15.0), NodeId{4}});
  opts.failures.push_back({from_seconds(25.0), NodeId{7}});
  Cluster cluster(opts);
  const auto result = cluster.run(small_workload(120));
  EXPECT_EQ(result.jobs.size(), 120u);
}

TEST(FailureInjection, DoubleKillOfDeadWorkerIsANoOp) {
  // Killing a worker that is already down must not re-run any of the
  // failure machinery (no second NameNode::node_failed, no double
  // requeueing): a run with a redundant second kill of the same victim is
  // bit-identical to the run with a single kill.
  const auto wl = small_workload(120);
  auto once = failing_options(PolicyKind::kGreedyLru, 5.0);
  auto twice = failing_options(PolicyKind::kGreedyLru, 5.0);
  twice.failures.push_back({from_seconds(20.0), NodeId{2}});  // already dead

  const auto r_once = run_once(once, wl);
  const auto r_twice = run_once(twice, wl);
  EXPECT_EQ(r_twice.node_failures, 1u);
  EXPECT_EQ(r_twice.failures_detected, 1u);
  EXPECT_EQ(metrics::fingerprint(r_once), metrics::fingerprint(r_twice));
}

TEST(FailureInjection, NameNodeNodeFailedIsIdempotent) {
  Rng rng(5);
  storage::NameNode nn(6, nullptr, rng);
  const FileId fid = nn.create_file("f", 4, 64, 3, 0);
  (void)fid;
  const auto first = nn.node_failed(1);
  EXPECT_FALSE(nn.is_node_alive(1));
  // A second declaration reports nothing new and re-queues nothing.
  const auto second = nn.node_failed(1);
  EXPECT_TRUE(second.empty());
  EXPECT_FALSE(nn.is_node_alive(1));
  (void)first;
}

TEST(FailureInjection, FailingUnknownWorkerThrows) {
  auto opts = failing_options(PolicyKind::kVanilla, 5.0, 99);
  Cluster cluster(opts);
  EXPECT_THROW(cluster.run(small_workload()), std::invalid_argument);
}

TEST(FailureInjection, DeterministicUnderFailures) {
  const auto wl = small_workload(100);
  const auto opts = failing_options(PolicyKind::kElephantTrap, 8.0);
  const auto r1 = run_once(opts, wl);
  const auto r2 = run_once(opts, wl);
  EXPECT_DOUBLE_EQ(r1.gmtt_s, r2.gmtt_s);
  EXPECT_EQ(r1.task_reexecutions, r2.task_reexecutions);
  EXPECT_EQ(r1.rereplicated_blocks, r2.rereplicated_blocks);
}

/// Randomized failure sweep: arbitrary victims at arbitrary times, every
/// run must complete and pass the full cross-component validation.
class FailureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSweep, AnyFailureScheduleSurvivesAndValidates) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  auto opts = paper_defaults(net::cct_profile(12), SchedulerKind::kFifo,
                             PolicyKind::kElephantTrap, seed);
  opts.rereplication_interval = from_seconds(2.0);
  const auto kills = 1 + rng.uniform_int(std::uint64_t{3});
  std::set<NodeId> victims;
  for (std::uint64_t k = 0; k < kills; ++k) {
    const auto victim =
        static_cast<NodeId>(rng.uniform_int(std::uint64_t{11}));
    if (!victims.insert(victim).second) continue;  // distinct victims only
    opts.failures.push_back(
        {from_seconds(rng.uniform(2.0, 40.0)), victim});
  }
  Cluster cluster(opts);
  const auto wl = small_workload(100, seed);
  const auto result = cluster.run(wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_NO_THROW(cluster.validate());
  // With replication 3 and at most 3 failures on 11 workers, data loss is
  // possible only if all of a block's replicas were hit — flag it if the
  // invariant machinery reports otherwise-impossible loss.
  if (victims.size() < 3) {
    EXPECT_EQ(result.blocks_lost, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, FailureSweep,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{9}));

TEST(FailureInjection, DareReplicasImproveAvailabilityWindow) {
  // Between the failure and the end of re-replication, blocks with a DARE
  // replica have more surviving copies. Compare minimum replica counts
  // immediately after a failure with re-replication disabled.
  auto vanilla_opts = failing_options(PolicyKind::kVanilla, 30.0);
  vanilla_opts.enable_rereplication = false;
  auto dare_opts = failing_options(PolicyKind::kGreedyLru, 30.0);
  dare_opts.enable_rereplication = false;

  const auto wl = small_workload(150);
  Cluster vanilla(vanilla_opts);
  Cluster dare(dare_opts);
  (void)vanilla.run(wl);
  (void)dare.run(wl);

  const auto total_replicas = [](const Cluster& c) {
    std::size_t total = 0;
    const auto& nn = c.name_node();
    for (FileId fid : nn.all_files()) {
      for (BlockId bid : nn.file(fid).blocks) {
        total += nn.locations(bid).size();
      }
    }
    return total;
  };
  EXPECT_GT(total_replicas(dare), total_replicas(vanilla));
}

}  // namespace
}  // namespace dare::cluster
