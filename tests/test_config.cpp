#include "common/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dare {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = Config::from_string(
      "budget = 0.2\n"
      "policy = elephant-trap\n"
      "threshold=1\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("budget", 0.0), 0.2);
  EXPECT_EQ(cfg.get_string("policy", ""), "elephant-trap");
  EXPECT_EQ(cfg.get_int("threshold", 0), 1);
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const auto cfg = Config::from_string(
      "# a comment\n"
      "\n"
      "p = 0.3  # inline comment\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("p", 0.0), 0.3);
  EXPECT_EQ(cfg.keys().size(), 1u);
}

TEST(Config, MissingKeyYieldsFallback) {
  const Config cfg;
  EXPECT_EQ(cfg.get_string("x", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cfg.get_int("x", 7), 7);
  EXPECT_TRUE(cfg.get_bool("x", true));
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::from_string("novalue\n"), std::invalid_argument);
}

TEST(Config, BadTypedValueThrows) {
  auto cfg = Config::from_string("p = abc\nn = 1.5\nb = maybe\n");
  EXPECT_THROW(cfg.get_double("p", 0.0), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, NonFiniteDoublesRejected) {
  // std::stod happily parses every spelling below, but a NaN or infinite
  // knob silently corrupts downstream arithmetic (e.g. arrival scaling) —
  // get_double must reject them with the offending key in the message.
  auto cfg = Config::from_string(
      "a = nan\nb = inf\nc = -inf\nd = INF\ne = NaN\nf = infinity\n");
  for (const auto& key : cfg.keys()) {
    try {
      cfg.get_double(key, 0.0);
      FAIL() << "key '" << key << "' should have thrown";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("'" + key + "'"),
                std::string::npos)
          << "message should name the key: " << e.what();
    }
  }
}

TEST(Config, FiniteDoubleSpellingsStillParse) {
  const auto cfg = Config::from_string(
      "a = 1e308\nb = -0.0\nc = 2.5e-10\nd = 42\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("a", 0.0), 1e308);
  EXPECT_DOUBLE_EQ(cfg.get_double("b", 1.0), -0.0);
  EXPECT_DOUBLE_EQ(cfg.get_double("c", 0.0), 2.5e-10);
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 0.0), 42.0);
}

TEST(Config, BooleanSpellings) {
  const auto cfg = Config::from_string(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = Yes\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", false));
}

TEST(Config, FromArgsSeparatesPositional) {
  std::vector<std::string> positional;
  const auto cfg = Config::from_args({"run", "p=0.3", "wl1", "budget=0.5"},
                                     &positional);
  EXPECT_DOUBLE_EQ(cfg.get_double("p", 0.0), 0.3);
  EXPECT_DOUBLE_EQ(cfg.get_double("budget", 0.0), 0.5);
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "run");
  EXPECT_EQ(positional[1], "wl1");
}

TEST(Config, MergeOverrides) {
  auto base = Config::from_string("a = 1\nb = 2\n");
  const auto over = Config::from_string("b = 3\nc = 4\n");
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, KeysSorted) {
  const auto cfg = Config::from_string("zeta = 1\nalpha = 2\n");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zeta");
}

TEST(Config, EmptyKeyRejected) {
  Config cfg;
  EXPECT_THROW(cfg.set("", "v"), std::invalid_argument);
}

TEST(Config, TrailingCharactersRejected) {
  auto cfg = Config::from_string("p = 0.5x\n");
  EXPECT_THROW(cfg.get_double("p", 0.0), std::invalid_argument);
}

TEST(Config, FromFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dare_config_test.conf";
  {
    std::ofstream out(path);
    out << "# cluster config\npolicy = elephant-trap\np = 0.3\n";
  }
  const auto cfg = Config::from_file(path);
  EXPECT_EQ(cfg.get_string("policy", ""), "elephant-trap");
  EXPECT_DOUBLE_EQ(cfg.get_double("p", 0.0), 0.3);
  std::remove(path.c_str());
}

TEST(Config, FromFileMissingThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/dare.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace dare
