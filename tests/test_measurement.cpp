#include "net/measurement.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dare::net {
namespace {

TEST(Measurement, PingAllPairsSampleCount) {
  Rng rng(1);
  const auto profile = cct_profile(5);
  Topology topo(profile.topology, rng);
  Network net(profile, topo, rng);
  const auto samples = ping_all_pairs(net, 2);
  EXPECT_EQ(samples.size(), 5u * 4u * 2u);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Measurement, DiskSamplesWithinProfileBounds) {
  Rng rng(2);
  const auto profile = ec2_profile(20);
  const auto samples = disk_bandwidth_samples(profile, 20, 10, rng);
  EXPECT_EQ(samples.size(), 200u);
  for (double s : samples) {
    EXPECT_GE(s, profile.disk.floor);
    EXPECT_LE(s, profile.disk.ceiling);
  }
}

TEST(Measurement, CctDiskMeanMatchesTable2) {
  Rng rng(3);
  const auto profile = cct_profile(20);
  const auto samples = disk_bandwidth_samples(profile, 20, 50, rng);
  const double mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                      static_cast<double>(samples.size());
  EXPECT_NEAR(mean, 157.8, 3.0);
}

TEST(Measurement, Ec2DiskHasLargeDispersion) {
  Rng rng(4);
  const auto profile = ec2_profile(100);
  const auto samples = disk_bandwidth_samples(profile, 100, 20, rng);
  OnlineStats st;
  for (double s : samples) st.add(s);
  EXPECT_GT(st.stddev(), 25.0);          // Table II: std 74.2
  EXPECT_GT(st.max(), 250.0);            // unshared-host bursts
  EXPECT_NEAR(st.mean(), 141.5, 20.0);   // Table II mean
}

TEST(Measurement, IperfSamplesRespectProfile) {
  Rng rng(5);
  const auto profile = ec2_profile(20);
  Topology topo(profile.topology, rng);
  Network net(profile, topo, rng);
  const auto samples = iperf_samples(net, 500, rng);
  EXPECT_EQ(samples.size(), 500u);
  OnlineStats st;
  for (double s : samples) st.add(s);
  EXPECT_NEAR(st.mean(), 73.2, 10.0);  // Table II: EC2 net mean
  EXPECT_GT(st.stddev(), 5.0);
}

TEST(Measurement, HopDistributionSumsToOne) {
  Rng rng(6);
  const auto profile = ec2_profile(20);
  Topology topo(profile.topology, rng);
  const auto dist = hop_count_distribution(topo, 10);
  EXPECT_EQ(dist.size(), 11u);
  const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Measurement, SingleRackHopDistributionAllAtOne) {
  Rng rng(7);
  const auto profile = cct_profile(20);
  Topology topo(profile.topology, rng);
  const auto dist = hop_count_distribution(topo, 10);
  EXPECT_NEAR(dist[1], 1.0, 1e-9);
}

TEST(Measurement, SingleNodeTopologyHasNoPairs) {
  Rng rng(8);
  TopologyOptions opts;
  opts.nodes = 1;
  Topology topo(opts, rng);
  const auto dist = hop_count_distribution(topo, 5);
  for (double p : dist) EXPECT_EQ(p, 0.0);
}

}  // namespace
}  // namespace dare::net
