#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace dare {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_level(LogLevel::kDebug);
    Logger::instance().set_sink(
        [this](LogLevel level, const std::string& msg) {
          captured_.emplace_back(level, msg);
        });
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, StreamStyleMessageReachesSink) {
  DARE_LOG_INFO << "x=" << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "x=42");
}

TEST_F(LoggingTest, LevelFiltersOutLowerSeverity) {
  Logger::instance().set_level(LogLevel::kError);
  DARE_LOG_DEBUG << "hidden";
  DARE_LOG_WARN << "also hidden";
  DARE_LOG_ERROR << "visible";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "visible");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  DARE_LOG_ERROR << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, FilteredMessagesDoNotEvaluate) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return 1;
  };
  DARE_LOG_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(LogLevelNames, AllNamed) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace dare
