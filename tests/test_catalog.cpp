#include "workload/catalog.h"

#include <gtest/gtest.h>

namespace dare::workload {
namespace {

TEST(Catalog, SizesWithinConfiguredRanges) {
  CatalogSpec spec;
  spec.small_files = 50;
  spec.small_min_blocks = 1;
  spec.small_max_blocks = 4;
  spec.large_files = 10;
  spec.large_min_blocks = 20;
  spec.large_max_blocks = 40;
  Rng rng(1);
  const auto catalog = build_catalog(spec, rng);
  ASSERT_EQ(catalog.size(), 60u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(catalog[i].blocks, 1u);
    EXPECT_LE(catalog[i].blocks, 4u);
  }
  for (std::size_t i = 50; i < 60; ++i) {
    EXPECT_GE(catalog[i].blocks, 20u);
    EXPECT_LE(catalog[i].blocks, 40u);
  }
}

TEST(Catalog, NamesAreUniqueAndClassed) {
  CatalogSpec spec;
  spec.small_files = 3;
  spec.large_files = 2;
  Rng rng(2);
  const auto catalog = build_catalog(spec, rng);
  EXPECT_EQ(catalog[0].name, "small-0");
  EXPECT_EQ(catalog[2].name, "small-2");
  EXPECT_EQ(catalog[3].name, "large-0");
  EXPECT_EQ(catalog[4].name, "large-1");
}

TEST(Catalog, DeterministicForSeed) {
  CatalogSpec spec;
  Rng r1(7);
  Rng r2(7);
  const auto a = build_catalog(spec, r1);
  const auto b = build_catalog(spec, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].blocks, b[i].blocks);
  }
}

TEST(Catalog, RejectsInvalidSpecs) {
  Rng rng(3);
  CatalogSpec none;
  none.small_files = 0;
  EXPECT_THROW(build_catalog(none, rng), std::invalid_argument);
  CatalogSpec inverted;
  inverted.small_min_blocks = 5;
  inverted.small_max_blocks = 2;
  EXPECT_THROW(build_catalog(inverted, rng), std::invalid_argument);
  CatalogSpec zero_blocks;
  zero_blocks.small_min_blocks = 0;
  EXPECT_THROW(build_catalog(zero_blocks, rng), std::invalid_argument);
}

TEST(Catalog, ZeroLargeFilesAllowed) {
  CatalogSpec spec;
  spec.large_files = 0;
  Rng rng(4);
  const auto catalog = build_catalog(spec, rng);
  EXPECT_EQ(catalog.size(), spec.small_files);
}

}  // namespace
}  // namespace dare::workload
