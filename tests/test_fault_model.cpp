// Unit tests for the stochastic fault model (src/faults/): parameter
// validation, distribution sanity, and bit-reproducibility of the sampled
// schedules.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"
#include "faults/fault_model.h"

namespace dare::faults {
namespace {

FaultInjectionParams typical() {
  FaultInjectionParams p;
  p.enabled = true;
  p.mtbf_s = 120.0;
  p.mttr_s = 30.0;
  p.permanent_fraction = 0.25;
  p.rack_correlation = 0.4;
  p.task_failure_prob = 0.05;
  return p;
}

TEST(FaultModel, RejectsNonPositiveMtbf) {
  Rng rng(1);
  auto p = typical();
  p.mtbf_s = 0.0;
  EXPECT_THROW(FaultProcess(p, rng), std::invalid_argument);
  p.mtbf_s = -5.0;
  EXPECT_THROW(FaultProcess(p, rng), std::invalid_argument);
}

TEST(FaultModel, RejectsNonPositiveMttr) {
  Rng rng(1);
  auto p = typical();
  p.mttr_s = 0.0;
  EXPECT_THROW(FaultProcess(p, rng), std::invalid_argument);
}

TEST(FaultModel, RejectsOutOfRangeProbabilities) {
  Rng rng(1);
  for (double bad : {-0.1, 1.5}) {
    auto p = typical();
    p.permanent_fraction = bad;
    EXPECT_THROW(FaultProcess(p, rng), std::invalid_argument);
    p = typical();
    p.rack_correlation = bad;
    EXPECT_THROW(FaultProcess(p, rng), std::invalid_argument);
    p = typical();
    p.task_failure_prob = bad;
    EXPECT_THROW(FaultProcess(p, rng), std::invalid_argument);
  }
}

TEST(FaultModel, UptimeIsPositiveWithMeanNearMtbf) {
  Rng rng(7);
  FaultProcess proc(typical(), rng);
  double sum_s = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const SimDuration up = proc.sample_uptime();
    ASSERT_GT(up, 0);
    sum_s += to_seconds(up);
  }
  const double mean = sum_s / kSamples;
  // Exponential with mean 120 s; 20k samples pin the estimate well within
  // +-10%.
  EXPECT_NEAR(mean, 120.0, 12.0);
}

TEST(FaultModel, FailureMixMatchesConfiguredFractions) {
  Rng rng(11);
  FaultProcess proc(typical(), rng);
  int permanent = 0;
  int correlated = 0;
  double downtime_sum_s = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const FailureSample s = proc.sample_failure();
    ASSERT_GT(s.downtime, 0);  // drawn (and clamped) for every kind
    if (s.kind == FaultKind::kPermanent) ++permanent;
    if (s.rack_correlated) ++correlated;
    downtime_sum_s += to_seconds(s.downtime);
  }
  EXPECT_NEAR(static_cast<double>(permanent) / kSamples, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(correlated) / kSamples, 0.4, 0.02);
  EXPECT_NEAR(downtime_sum_s / kSamples, 30.0, 3.0);
}

TEST(FaultModel, TaskFailureRateMatchesProbability) {
  Rng rng(13);
  FaultProcess proc(typical(), rng);
  int failures = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (proc.sample_task_failure()) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / kSamples, 0.05, 0.01);
}

TEST(FaultModel, SampledScheduleIsReproducible) {
  Rng a(99);
  Rng b(99);
  FaultProcess pa(typical(), a);
  FaultProcess pb(typical(), b);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(pa.sample_uptime(), pb.sample_uptime());
    const FailureSample fa = pa.sample_failure();
    const FailureSample fb = pb.sample_failure();
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_EQ(fa.downtime, fb.downtime);
    EXPECT_EQ(fa.rack_correlated, fb.rack_correlated);
    EXPECT_EQ(pa.sample_task_failure(), pb.sample_task_failure());
  }
}

TEST(FaultModel, DrawSequenceIsKindIndependent) {
  // The downtime is drawn even for permanent failures, so the number of RNG
  // draws per sample_failure() call never depends on the sampled kind —
  // otherwise two runs diverging in one coin flip would desynchronize every
  // later draw. Verified indirectly: with permanent_fraction 0 vs 1, the
  // *downtime* streams must still be identical.
  auto p0 = typical();
  p0.permanent_fraction = 0.0;
  auto p1 = typical();
  p1.permanent_fraction = 1.0;
  Rng a(5);
  Rng b(5);
  FaultProcess pa(p0, a);
  FaultProcess pb(p1, b);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(pa.sample_failure().downtime, pb.sample_failure().downtime);
  }
}

}  // namespace
}  // namespace dare::faults
