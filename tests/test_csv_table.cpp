#include <gtest/gtest.h>

#include <locale>
#include <sstream>

#include "common/csv.h"
#include "common/table.h"

namespace dare {
namespace {

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.row(std::vector<std::string>{"1", "2"});
  csv.row(std::vector<double>{0.5, 1.5});
  EXPECT_EQ(csv.rows_written(), 2u);
  const std::string text = out.str();
  EXPECT_NE(text.find("x,y\n"), std::string::npos);
  EXPECT_NE(text.find("1,2\n"), std::string::npos);
  EXPECT_NE(text.find("0.5,1.5\n"), std::string::npos);
}

TEST(Csv, HeaderAfterRowsThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"1"});
  EXPECT_THROW(csv.header({"x"}), std::logic_error);
}

TEST(Csv, DoubleRoundTripPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<double>{1.0 / 3.0});
  const double parsed = std::stod(out.str());
  EXPECT_DOUBLE_EQ(parsed, 1.0 / 3.0);
}

/// Comma decimal point, dot thousands separator, 3-digit grouping — the
/// de_DE-style facet that used to corrupt numeric CSV cells.
class GroupingNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(Csv, NumericRowsAreLocaleIndependent) {
  // Regression: row(vector<double>) used to format via an ostringstream
  // that inherits the stream's locale, so a grouping locale turned
  // 1234567.25 into "1.234.567,25" — a row with extra separators and a
  // decimal comma, silently corrupting every downstream parse. Formatting
  // now goes through std::to_chars and must ignore the imbued locale.
  std::ostringstream out;
  out.imbue(std::locale(out.getloc(), new GroupingNumpunct));
  CsvWriter csv(out);
  csv.header({"big", "frac"});
  csv.row(std::vector<double>{1234567.25, 0.5});
  EXPECT_EQ(out.str(), "big,frac\n1234567.25,0.5\n");
}

TEST(Csv, FormatDoubleShortestRoundTrip) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(-2.25), "-2.25");
  EXPECT_EQ(format_double(0.0), "0");
  const double third = 1.0 / 3.0;
  EXPECT_DOUBLE_EQ(std::stod(format_double(third)), third);
}

TEST(Table, AlignsColumnsAndPrintsSeparator) {
  AsciiTable t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "2"});
  std::ostringstream out;
  t.print(out, "My Table");
  const std::string text = out.str();
  EXPECT_NE(text.find("My Table"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
}

TEST(Table, NumericRowHelper) {
  AsciiTable t({"label", "a", "b"});
  t.add_row("row", {1.23456, 7.0}, 2);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.23"), std::string::npos);
  EXPECT_NE(out.str().find("7.00"), std::string::npos);
}

TEST(Table, WidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyColumnsThrows) {
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(Table, CsvExportMatchesContents) {
  AsciiTable t({"name", "value"});
  t.add_row({"a,b", "1"});  // comma must be quoted
  t.add_row({"plain", "2"});
  std::ostringstream out;
  t.to_csv(out);
  EXPECT_EQ(out.str(), "name,value\n\"a,b\",1\nplain,2\n");
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.856, 1), "85.6%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace dare
