// Network-fault subsystem tests: the RepairScheduler data structure (two
// classes, dedup, deterministic ordering, retry reinsertion), scripted rack
// partitions end to end (lost heartbeats -> declaration -> heal ->
// re-registration), and the partition-heal vs. repair race (surplus copies
// pruned exactly once, repair ledger balanced).
//
// Scripted partitions make these tests deterministic: the stochastic
// NetworkFaultProcess is exercised by Determinism.NetworkFaultsEnabled and
// the NetFaultSoak suite in test_chaos_soak.cpp.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "cluster/repair_scheduler.h"
#include "common/invariant.h"
#include "metrics/run_metrics.h"
#include "net/profile.h"

namespace dare::cluster {
namespace {

// --- RepairScheduler unit tests --------------------------------------------

TEST(RepairScheduler, PrioritizedCriticalDrainsBeforeBulk) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(10, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.enqueue(11, RepairClass::kCritical, 200));
  EXPECT_TRUE(q.enqueue(12, RepairClass::kBulk, 50));
  EXPECT_TRUE(q.enqueue(13, RepairClass::kCritical, 150));

  // Criticals first (by enqueue time), then bulk (by enqueue time) — not
  // arrival order.
  EXPECT_EQ(q.pop_front()->block, 13);
  EXPECT_EQ(q.pop_front()->block, 11);
  EXPECT_EQ(q.pop_front()->block, 12);
  EXPECT_EQ(q.pop_front()->block, 10);
  EXPECT_FALSE(q.pop_front().has_value());
}

TEST(RepairScheduler, FifoIgnoresClasses) {
  RepairScheduler q(RepairPolicy::kFifo);
  EXPECT_TRUE(q.enqueue(10, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.enqueue(11, RepairClass::kCritical, 200));
  EXPECT_TRUE(q.enqueue(12, RepairClass::kBulk, 50));

  EXPECT_EQ(q.pop_front()->block, 10);
  EXPECT_EQ(q.pop_front()->block, 11);
  EXPECT_EQ(q.pop_front()->block, 12);
}

TEST(RepairScheduler, TiedEnqueueTimesOrderByBlockId) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(42, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.enqueue(7, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.enqueue(19, RepairClass::kBulk, 100));
  EXPECT_EQ(q.pop_front()->block, 7);
  EXPECT_EQ(q.pop_front()->block, 19);
  EXPECT_EQ(q.pop_front()->block, 42);
}

// The regression Cluster::queue_repair relies on: replicas of one block
// dying in quick succession (two declarations both queueing it) must not
// produce two queue entries burning two rereplication_batch slots.
TEST(RepairScheduler, DedupSecondEnqueueIsIgnored) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(5, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.contains(5));
  EXPECT_FALSE(q.enqueue(5, RepairClass::kBulk, 300));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.consistent());

  // Original enqueue time survives the duplicate (repair latency measures
  // from the *first* queueing).
  const auto e = q.pop_front();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->enqueued, 100);
  EXPECT_FALSE(q.contains(5));
}

TEST(RepairScheduler, DuplicateEnqueueUpgradesBulkToCritical) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(5, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.enqueue(6, RepairClass::kCritical, 150));
  // Another replica of block 5 died: the queued entry is upgraded in place
  // (keeping its earlier enqueue time), not duplicated.
  EXPECT_FALSE(q.enqueue(5, RepairClass::kCritical, 200));
  EXPECT_EQ(q.size(), 2u);

  const auto first = q.pop_front();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->block, 5);
  EXPECT_EQ(first->cls, RepairClass::kCritical);
  EXPECT_EQ(first->enqueued, 100);
  // A critical entry never downgrades back to bulk.
  RepairScheduler q2(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q2.enqueue(9, RepairClass::kCritical, 100));
  EXPECT_FALSE(q2.enqueue(9, RepairClass::kBulk, 200));
  EXPECT_EQ(q2.pop_front()->cls, RepairClass::kCritical);
}

TEST(RepairScheduler, ReinsertRestoresPoppedEntry) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(5, RepairClass::kBulk, 100));
  auto e = q.pop_front();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(q.empty());

  e->retries = 1;
  e->ready = 500;
  q.reinsert(*e);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.contains(5));
  const auto back = q.pop_front();
  EXPECT_EQ(back->retries, 1u);
  EXPECT_EQ(back->ready, 500);
  EXPECT_EQ(back->enqueued, 100);  // first-enqueue time preserved
}

TEST(RepairScheduler, ReinsertThrowsWhenBlockAlreadyQueued) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(5, RepairClass::kBulk, 100));
  auto e = q.pop_front();
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(q.enqueue(5, RepairClass::kCritical, 200));  // fresh entry
  EXPECT_THROW(q.reinsert(*e), std::logic_error);
}

TEST(RepairScheduler, DrainReturnsPriorityOrderAndEmpties) {
  RepairScheduler q(RepairPolicy::kPrioritized);
  EXPECT_TRUE(q.enqueue(10, RepairClass::kBulk, 100));
  EXPECT_TRUE(q.enqueue(11, RepairClass::kCritical, 200));
  EXPECT_TRUE(q.enqueue(12, RepairClass::kBulk, 50));
  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].block, 11);
  EXPECT_EQ(drained[1].block, 12);
  EXPECT_EQ(drained[2].block, 10);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.consistent());
}

// --- scripted partitions, end to end ---------------------------------------

[[noreturn]] void throwing_handler(const InvariantViolation& v) {
  throw std::logic_error("invariant violated: " + v.message);
}

class ThrowOnInvariant {
 public:
  ThrowOnInvariant() : previous_(set_invariant_handler(&throwing_handler)) {}
  ~ThrowOnInvariant() { set_invariant_handler(previous_); }

 private:
  InvariantHandler previous_;
};

/// Long-tailed workload: arrivals spread far enough that the run is still
/// active when a scripted partition (t=10s..25s) heals.
workload::Workload partition_workload() {
  workload::WorkloadOptions opts;
  opts.num_jobs = 30;
  opts.seed = 7;
  opts.catalog.small_files = 16;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 4;
  opts.catalog.large_max_blocks = 6;
  auto wl = workload::make_wl1(opts);
  for (std::size_t i = 0; i < wl.jobs.size(); ++i) {
    wl.jobs[i].arrival = from_seconds(1.0 + 1.5 * static_cast<double>(i));
  }
  return wl;
}

/// The topology is deterministic per (profile, seed): a probe instance
/// reveals which rack worker 0 landed in, so the scripted partition always
/// hits a populated rack.
RackId rack_of_worker0(const ClusterOptions& opts) {
  Cluster probe(opts);
  return probe.topology().rack_of(0);
}

ClusterOptions partition_options() {
  // ec2 profile: multi-rack, so a rack partition actually cuts something.
  auto opts = paper_defaults(net::ec2_profile(10), SchedulerKind::kFair,
                             PolicyKind::kElephantTrap, /*seed=*/12);
  // 3 s heartbeats x 3 missed => declaration ~9..12 s into the partition;
  // a 15 s episode is comfortably detected, leaving ~3 s of declared time.
  opts.partition_events.push_back(
      {from_seconds(10.0), rack_of_worker0(opts), from_seconds(15.0)});
  opts.rereplication_interval = from_seconds(0.5);
  opts.rereplication_batch = 32;
  return opts;
}

TEST(NetFault, ScriptedPartitionIsDetectedAndHeals) {
  ThrowOnInvariant guard;
  const auto opts = partition_options();
  const auto wl = partition_workload();

  Cluster cluster(opts);
  metrics::RunResult result;
  ASSERT_NO_THROW(result = cluster.run(wl));

  EXPECT_EQ(result.partition_episodes, 1u);
  EXPECT_EQ(result.partitions_healed, 1u);

  // The detector declared at least the partitioned worker dead — without a
  // single physical node failure. Heal re-registered it.
  EXPECT_EQ(result.node_failures, 0u);
  EXPECT_EQ(result.transient_failures, 0u);
  EXPECT_EQ(result.permanent_failures, 0u);
  EXPECT_GE(result.failures_detected, 1u);
  EXPECT_GE(result.node_rejoins, 1u);

  // Every job is terminally accounted and the cluster is consistent.
  ASSERT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) EXPECT_GE(jm.completion, jm.arrival);
  EXPECT_NO_THROW(cluster.validate());

  // The repair ledger closed out: every first-time enqueue terminally
  // landed or was abandoned.
  EXPECT_EQ(result.repairs_enqueued,
            result.repairs_landed + result.repairs_abandoned);
}

TEST(NetFault, HealRepairRacePrunesSurplusExactlyOnce) {
  ThrowOnInvariant guard;
  const auto opts = partition_options();
  const auto wl = partition_workload();

  Cluster cluster(opts);
  metrics::RunResult result;
  ASSERT_NO_THROW(result = cluster.run(wl));

  // The race under test: declaration queued repairs for the partitioned
  // rack's blocks, the aggressive tick landed copies during the episode,
  // and heal-time re-registration found the "lost" replicas alive again.
  EXPECT_GE(result.repairs_landed, 1u);
  EXPECT_GE(result.overreplication_prunes, 1u);

  // Exactly-once pruning shows up as global consistency: validate() fails
  // if a replica was pruned twice (location without a physical copy) or
  // zero times where it mattered (it also checks the repair ledger
  // equation).
  EXPECT_NO_THROW(cluster.validate());
  EXPECT_EQ(result.repairs_enqueued,
            result.repairs_landed + result.repairs_abandoned);

  // The name node never kept a surplus static replica: a missed prune at
  // re-registration would leave a block above its replication target.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    const auto& info = nn.file(fid);
    for (BlockId bid : info.blocks) {
      EXPECT_LE(nn.static_locations(bid).size(),
                static_cast<std::size_t>(info.replication))
          << "block " << bid << " kept surplus replicas after the heal";
    }
  }
}

TEST(NetFault, PartitionEventValidation) {
  auto opts = paper_defaults(net::ec2_profile(10), SchedulerKind::kFifo,
                             PolicyKind::kVanilla, /*seed=*/3);
  opts.partition_events.push_back({from_seconds(1.0), RackId{9999},
                                   from_seconds(5.0)});
  EXPECT_THROW(Cluster{opts}, std::invalid_argument);

  auto zero = paper_defaults(net::ec2_profile(10), SchedulerKind::kFifo,
                             PolicyKind::kVanilla, /*seed=*/3);
  zero.partition_events.push_back({from_seconds(1.0), RackId{0}, 0});
  EXPECT_THROW(Cluster{zero}, std::invalid_argument);
}

TEST(NetFault, BadParamsThrowNamingField) {
  auto opts = paper_defaults(net::ec2_profile(10), SchedulerKind::kFifo,
                             PolicyKind::kVanilla, /*seed=*/3);
  opts.netfault.enabled = true;
  opts.netfault.bandwidth_cut = 0.0;
  try {
    Cluster cluster(opts);
    FAIL() << "bandwidth_cut = 0 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bandwidth_cut"), std::string::npos)
        << e.what();
  }

  auto backoff = paper_defaults(net::ec2_profile(10), SchedulerKind::kFifo,
                                PolicyKind::kVanilla, /*seed=*/3);
  backoff.repair_retry_backoff = 0;
  try {
    Cluster cluster(backoff);
    FAIL() << "repair_retry_backoff = 0 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("repair_retry_backoff"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dare::cluster
