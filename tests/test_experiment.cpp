// Tests for the experiment harness: option builders, config overrides, and
// the parallel runner's order preservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

TEST(PaperDefaults, MatchSectionVParameters) {
  const auto opts = paper_defaults(net::cct_profile(20), SchedulerKind::kFair,
                                   PolicyKind::kElephantTrap, 7);
  EXPECT_DOUBLE_EQ(opts.trap.p, 0.3);
  EXPECT_EQ(opts.trap.threshold, 1u);
  EXPECT_DOUBLE_EQ(opts.budget_fraction, 0.2);
  EXPECT_EQ(opts.scheduler, SchedulerKind::kFair);
  EXPECT_EQ(opts.policy, PolicyKind::kElephantTrap);
  EXPECT_EQ(opts.seed, 7u);
}

TEST(ParseNames, SchedulerAndPolicySpellings) {
  EXPECT_EQ(parse_scheduler("fifo"), SchedulerKind::kFifo);
  EXPECT_EQ(parse_scheduler("Fair"), SchedulerKind::kFair);
  EXPECT_THROW(parse_scheduler("lifo"), std::invalid_argument);
  EXPECT_EQ(parse_policy("vanilla"), PolicyKind::kVanilla);
  EXPECT_EQ(parse_policy("lru"), PolicyKind::kGreedyLru);
  EXPECT_EQ(parse_policy("greedy-lfu"), PolicyKind::kGreedyLfu);
  EXPECT_EQ(parse_policy("et"), PolicyKind::kElephantTrap);
  EXPECT_EQ(parse_policy("elephant-trap"), PolicyKind::kElephantTrap);
  EXPECT_THROW(parse_policy("arc"), std::invalid_argument);
}

TEST(ApplyOverrides, KnownKeysApplied) {
  const auto cfg = Config::from_string(
      "profile = ec2\n"
      "nodes = 40\n"
      "scheduler = fair\n"
      "policy = lru\n"
      "p = 0.7\n"
      "threshold = 3\n"
      "budget = 0.5\n"
      "map_slots = 4\n"
      "reduce_slots = 2\n"
      "heartbeat_s = 1.5\n"
      "fair_delay_ms = 250\n"
      "seed = 99\n");
  const auto opts = apply_overrides(
      paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                     PolicyKind::kVanilla),
      cfg);
  EXPECT_EQ(opts.profile.name, "ec2");
  EXPECT_EQ(opts.profile.topology.nodes, 40u);
  EXPECT_EQ(opts.scheduler, SchedulerKind::kFair);
  EXPECT_EQ(opts.policy, PolicyKind::kGreedyLru);
  EXPECT_DOUBLE_EQ(opts.trap.p, 0.7);
  EXPECT_EQ(opts.trap.threshold, 3u);
  EXPECT_DOUBLE_EQ(opts.budget_fraction, 0.5);
  EXPECT_EQ(opts.map_slots_per_node, 4u);
  EXPECT_EQ(opts.reduce_slots_per_node, 2u);
  EXPECT_EQ(opts.heartbeat_interval, from_seconds(1.5));
  EXPECT_EQ(opts.fair_delay, from_millis(250));
  EXPECT_EQ(opts.seed, 99u);
}

TEST(ApplyOverrides, UnknownKeysIgnoredDefaultsKept) {
  const auto cfg = Config::from_string("jobs = 500\nfoo = bar\n");
  const auto base = paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                                   PolicyKind::kElephantTrap);
  const auto opts = apply_overrides(base, cfg);
  EXPECT_EQ(opts.profile.topology.nodes, base.profile.topology.nodes);
  EXPECT_DOUBLE_EQ(opts.trap.p, base.trap.p);
  EXPECT_EQ(opts.scheduler, base.scheduler);
}

TEST(ApplyOverrides, NodesAloneKeepsProfileKind) {
  const auto cfg = Config::from_string("nodes = 50\n");
  const auto opts = apply_overrides(
      paper_defaults(net::ec2_profile(20), SchedulerKind::kFifo,
                     PolicyKind::kVanilla),
      cfg);
  EXPECT_EQ(opts.profile.name, "ec2");
  EXPECT_EQ(opts.profile.topology.nodes, 50u);
}

TEST(ApplyOverrides, BadValuesThrow) {
  const auto base = paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                                   PolicyKind::kVanilla);
  EXPECT_THROW(
      apply_overrides(base, Config::from_string("profile = gcp\n")),
      std::invalid_argument);
  EXPECT_THROW(
      apply_overrides(base, Config::from_string("policy = arc\n")),
      std::invalid_argument);
  EXPECT_THROW(apply_overrides(base, Config::from_string("p = high\n")),
               std::invalid_argument);
}

TEST(StandardWorkloads, ScaleArrivalsWithClusterSize) {
  const auto small = standard_wl1(12, 100, 3);
  const auto large = standard_wl1(100, 100, 3);
  // Same job count; the larger cluster receives them faster.
  ASSERT_EQ(small.jobs.size(), large.jobs.size());
  EXPECT_GT(small.jobs.back().arrival, large.jobs.back().arrival);
}

TEST(RunParallel, PreservesOrderAndValues) {
  std::vector<std::function<metrics::RunResult()>> runs;
  for (int i = 0; i < 6; ++i) {
    runs.push_back([i] {
      metrics::RunResult r;
      r.makespan = i;
      return r;
    });
  }
  const auto results = run_parallel(runs, 3);
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].makespan, i);
  }
}

TEST(RunParallel, ProgressObserverReportsEveryCompletion) {
  std::vector<std::function<metrics::RunResult()>> runs;
  for (int i = 0; i < 8; ++i) {
    runs.push_back([i] {
      metrics::RunResult r;
      r.makespan = i;
      return r;
    });
  }
  // The observer's counter snapshot is taken under run_parallel's mutex,
  // but the observer itself runs outside it and may be invoked
  // concurrently (the SweepProgress contract) — so the test provides its
  // own lock.
  std::mutex mutex;
  std::vector<std::size_t> seen;
  std::size_t reported_total = 0;
  const auto results =
      run_parallel(runs, 4, [&](std::size_t done, std::size_t total) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(done);
        reported_total = total;
      });
  ASSERT_EQ(results.size(), 8u);
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_EQ(reported_total, 8u);
  // Each completion count 1..8 is reported exactly once; arrival order is
  // completion order, which is nondeterministic.
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].makespan, i);
  }
}

TEST(RunParallel, ThrowingProgressObserverPropagates) {
  std::vector<std::function<metrics::RunResult()>> runs;
  for (int i = 0; i < 4; ++i) {
    runs.push_back([] { return metrics::RunResult{}; });
  }
  // The documented exception contract: a throwing observer is captured in
  // that run's future and rethrown by run_parallel — no deadlock, no
  // poisoned mutex, every worker still drains.
  EXPECT_THROW(run_parallel(runs, 2,
                            [](std::size_t, std::size_t) {
                              throw std::runtime_error("observer failure");
                            }),
               std::runtime_error);
}

TEST(StandardWorkloads, DegenerateClusterSizesClampToOneWorker) {
  // total_nodes counts the master: 1- and 0-node "clusters" have no
  // workers. The unguarded 19/(n-1) arrival scaling used to yield inf
  // interarrivals at n == 1 (and size_t wraparound at n == 0); all three
  // degenerate sizes must now behave like the single-worker cluster.
  const auto two = standard_wl1(2, 8, 3);
  const auto one = standard_wl1(1, 8, 3);
  const auto zero = standard_wl1(0, 8, 3);
  ASSERT_EQ(one.jobs.size(), two.jobs.size());
  ASSERT_EQ(zero.jobs.size(), two.jobs.size());
  for (std::size_t i = 0; i < two.jobs.size(); ++i) {
    EXPECT_EQ(one.jobs[i].arrival, two.jobs[i].arrival);
    EXPECT_EQ(zero.jobs[i].arrival, two.jobs[i].arrival);
    EXPECT_GE(one.jobs[i].arrival, 0);
    EXPECT_LT(one.jobs[i].arrival, kTimeNever);
  }
  const auto one_wl2 = standard_wl2(1, 8, 3);
  const auto two_wl2 = standard_wl2(2, 8, 3);
  ASSERT_EQ(one_wl2.jobs.size(), two_wl2.jobs.size());
  for (std::size_t i = 0; i < two_wl2.jobs.size(); ++i) {
    EXPECT_EQ(one_wl2.jobs[i].arrival, two_wl2.jobs[i].arrival);
  }
}

}  // namespace
}  // namespace dare::cluster
