// End-to-end integration tests: full (scaled-down) paper experiments,
// checking the *orderings* the evaluation section reports rather than
// absolute numbers.
#include <gtest/gtest.h>

#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

constexpr std::size_t kJobs = 150;

struct Fig7Row {
  metrics::RunResult vanilla;
  metrics::RunResult lru;
  metrics::RunResult trap;
};

Fig7Row run_row(SchedulerKind sched, const workload::Workload& wl,
                std::size_t nodes = 12) {
  Fig7Row row;
  row.vanilla = run_once(
      paper_defaults(net::cct_profile(nodes), sched, PolicyKind::kVanilla),
      wl);
  row.lru = run_once(
      paper_defaults(net::cct_profile(nodes), sched, PolicyKind::kGreedyLru),
      wl);
  row.trap = run_once(paper_defaults(net::cct_profile(nodes), sched,
                                     PolicyKind::kElephantTrap),
                      wl);
  return row;
}

TEST(Integration, Fig7ShapeFifoWl1) {
  // At this scaled-down size (15 workers vs the paper's 19) ratios compress
  // because vanilla's floor is replicas/workers; require a solid multiple
  // plus a large absolute locality gain. The full-scale factor is checked
  // by bench_fig7_cct.
  const auto wl = standard_wl1(16, kJobs);
  const auto row = run_row(SchedulerKind::kFifo, wl, 16);
  EXPECT_GT(row.lru.locality, row.vanilla.locality * 1.8);
  EXPECT_GT(row.trap.locality, row.vanilla.locality * 1.4);
  EXPECT_GT(row.lru.locality - row.vanilla.locality, 0.15);
  // And improves (or at least does not worsen) user metrics.
  EXPECT_LT(row.trap.gmtt_s, row.vanilla.gmtt_s * 1.05);
  EXPECT_LT(row.trap.mean_slowdown, row.vanilla.mean_slowdown * 1.05);
}

TEST(Integration, Fig7ShapeFairWl2) {
  const auto wl = standard_wl2(12, kJobs);
  const auto row = run_row(SchedulerKind::kFair, wl);
  // Fair with delay scheduling already has high locality; DARE keeps it
  // high (near the ceiling the two are within scheduling noise of each
  // other at this scale — the full-size contrast is in bench_fig7_cct).
  EXPECT_GT(row.vanilla.locality, 0.4);
  EXPECT_GE(row.trap.locality, row.vanilla.locality - 0.04);
  EXPECT_GT(row.trap.locality, 0.7);
}

TEST(Integration, FairBeatsFifoOnLocalityVanilla) {
  const auto wl = standard_wl2(12, kJobs);
  const auto fifo = run_once(
      paper_defaults(net::cct_profile(12), SchedulerKind::kFifo,
                     PolicyKind::kVanilla),
      wl);
  const auto fair = run_once(
      paper_defaults(net::cct_profile(12), SchedulerKind::kFair,
                     PolicyKind::kVanilla),
      wl);
  EXPECT_GT(fair.locality, fifo.locality);
}

TEST(Integration, TrapWritesLessDiskThanGreedyLru) {
  // Paper Section I: the probabilistic scheme achieves comparable locality
  // with about half the dynamic-replica disk writes of greedy LRU.
  const auto wl = standard_wl1(12, kJobs);
  const auto row = run_row(SchedulerKind::kFifo, wl);
  EXPECT_LT(row.trap.dynamic_replica_disk_writes,
            row.lru.dynamic_replica_disk_writes);
  EXPECT_GT(row.trap.locality, row.lru.locality * 0.7);
}

TEST(Integration, UniformityImprovesWithDare) {
  // Fig. 11: cv of node popularity indices shrinks after dynamic
  // replication spreads hot blocks.
  const auto wl = standard_wl1(12, kJobs);
  const auto result = run_once(
      paper_defaults(net::cct_profile(12), SchedulerKind::kFifo,
                     PolicyKind::kElephantTrap),
      wl);
  EXPECT_LT(result.cv_after, result.cv_before);
}

TEST(Integration, Ec2GainsAtLeastMatchCct) {
  // Fig. 10 vs Fig. 7: the EC2 profile's lower network/disk bandwidth ratio
  // makes remote reads relatively more expensive, so DARE's improvement in
  // turnaround is at least as large there.
  const auto wl_cct = standard_wl1(20, 400, 3);
  const auto cct_vanilla =
      run_once(paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                              PolicyKind::kVanilla),
               wl_cct);
  const auto cct_dare =
      run_once(paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                              PolicyKind::kElephantTrap),
               wl_cct);
  const auto ec2_vanilla =
      run_once(paper_defaults(net::ec2_profile(20), SchedulerKind::kFifo,
                              PolicyKind::kVanilla),
               wl_cct);
  const auto ec2_dare =
      run_once(paper_defaults(net::ec2_profile(20), SchedulerKind::kFifo,
                              PolicyKind::kElephantTrap),
               wl_cct);
  const double cct_gain = cct_vanilla.gmtt_s / cct_dare.gmtt_s;
  const double ec2_gain = ec2_vanilla.gmtt_s / ec2_dare.gmtt_s;
  EXPECT_GT(cct_gain, 1.0);
  EXPECT_GT(ec2_gain, 1.0);
  // Allow noise but require the qualitative ordering not be inverted badly.
  EXPECT_GT(ec2_gain, cct_gain * 0.9);
}

TEST(Integration, HigherPGivesMoreReplication) {
  // Fig. 8a: replication activity grows with the sampling probability.
  const auto wl = standard_wl2(12, kJobs);
  ClusterOptions low = paper_defaults(net::cct_profile(12),
                                      SchedulerKind::kFifo,
                                      PolicyKind::kElephantTrap);
  low.trap.p = 0.1;
  ClusterOptions high = low;
  high.trap.p = 0.9;
  const auto r_low = run_once(low, wl);
  const auto r_high = run_once(high, wl);
  EXPECT_GT(r_high.dynamic_replica_disk_writes,
            r_low.dynamic_replica_disk_writes);
  EXPECT_GE(r_high.locality, r_low.locality * 0.9);
}

TEST(Integration, ScarlettComparableButCostsNetwork) {
  const auto wl = standard_wl1(12, kJobs);
  ClusterOptions scarlett_opts = paper_defaults(
      net::cct_profile(12), SchedulerKind::kFifo, PolicyKind::kVanilla);
  scarlett_opts.enable_scarlett = true;
  scarlett_opts.scarlett.epoch = from_seconds(60.0);
  const auto scarlett = run_once(scarlett_opts, wl);
  const auto dare = run_once(
      paper_defaults(net::cct_profile(12), SchedulerKind::kFifo,
                     PolicyKind::kElephantTrap),
      wl);
  EXPECT_GT(scarlett.proactive_replication_bytes, 0u);
  EXPECT_EQ(dare.proactive_replication_bytes, 0u);
}

TEST(Integration, ParallelSweepMatchesSequential) {
  const auto wl = standard_wl1(12, 60, 5);
  std::vector<std::function<metrics::RunResult()>> runs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    runs.push_back([&wl, seed] {
      return run_once(paper_defaults(net::cct_profile(8),
                                     SchedulerKind::kFifo,
                                     PolicyKind::kElephantTrap, seed),
                      wl);
    });
  }
  const auto parallel = run_parallel(runs, 4);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto sequential = runs[i]();
    EXPECT_DOUBLE_EQ(parallel[i].locality, sequential.locality);
    EXPECT_EQ(parallel[i].makespan, sequential.makespan);
  }
}

}  // namespace
}  // namespace dare::cluster
