#include "sched/fair_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace dare::sched {
namespace {

JobSpec make_job(JobId id, std::size_t maps, BlockId first_block,
                 std::size_t reduces = 1) {
  JobSpec spec;
  spec.id = id;
  spec.arrival = 10 * id;
  for (std::size_t i = 0; i < maps; ++i) {
    spec.maps.push_back(
        MapTaskSpec{first_block + static_cast<BlockId>(i), 128, 1000});
  }
  spec.reduces = reduces;
  return spec;
}

class MapLocator final : public BlockLocator {
 public:
  void add(NodeId node, BlockId block) { local_[node].insert(block); }
  bool is_local(NodeId node, BlockId block) const override {
    const auto it = local_.find(node);
    return it != local_.end() && it->second.count(block) != 0;
  }

 private:
  std::map<NodeId, std::set<BlockId>> local_;
};

class FairTest : public ::testing::Test {
 protected:
  JobTable jobs_;
  MapLocator locator_;
};

TEST(FairScheduler, RejectsNegativeDelay) {
  EXPECT_THROW(FairScheduler(-1), std::invalid_argument);
}

TEST_F(FairTest, LocalTaskSelectedImmediately) {
  FairScheduler sched(from_seconds(5.0));
  jobs_.add_job(make_job(1, 2, 100));
  locator_.add(0, 101);
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(sel->node_local());
  EXPECT_EQ(jobs_.job(1).waiting_since, kTimeNever);
}

TEST_F(FairTest, DelaysNonLocalLaunchUntilWindowExpires) {
  // Two-level delay: wait up to 2 s for node locality, then (with no
  // rack-local option either) a further 1 s before going off-rack.
  FairScheduler sched(from_seconds(2.0), from_seconds(1.0));
  jobs_.add_job(make_job(1, 1, 100));
  // No locality anywhere: opportunities inside the window are declined.
  EXPECT_FALSE(sched.select_map(0, from_seconds(10.0), jobs_, locator_));
  EXPECT_EQ(jobs_.job(1).waiting_since, from_seconds(10.0));
  EXPECT_FALSE(sched.select_map(1, from_seconds(11.0), jobs_, locator_));
  EXPECT_FALSE(sched.select_map(2, from_seconds(12.5), jobs_, locator_));
  // Both windows expired: launch off-rack, clock reset.
  const auto sel = sched.select_map(0, from_seconds(13.0), jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->locality, Locality::kOffRack);
  EXPECT_EQ(jobs_.job(1).waiting_since, kTimeNever);
}

TEST_F(FairTest, RackLocalAcceptedAfterFirstDelayLevel) {
  // A locator with rack information: block 100 lives in node 0's rack but
  // not on node 0 itself.
  class RackLocator final : public BlockLocator {
   public:
    bool is_local(NodeId, BlockId) const override { return false; }
    bool is_rack_local(NodeId node, BlockId block) const override {
      return node == 0 && block == 100;
    }
  } rack_locator;
  FairScheduler sched(from_seconds(2.0), from_seconds(50.0));
  jobs_.add_job(make_job(1, 1, 100));
  EXPECT_FALSE(sched.select_map(0, from_seconds(1.0), jobs_, rack_locator));
  // After the node-level delay, the rack-local launch is accepted long
  // before the rack-level delay would allow off-rack.
  const auto sel =
      sched.select_map(0, from_seconds(3.5), jobs_, rack_locator);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->locality, Locality::kRackLocal);
}

TEST_F(FairTest, ZeroDelayBehavesGreedily) {
  FairScheduler sched(0);
  jobs_.add_job(make_job(1, 1, 100));
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_FALSE(sel->node_local());
}

TEST_F(FairTest, SkippedJobLetsNextJobRun) {
  FairScheduler sched(from_seconds(5.0));
  jobs_.add_job(make_job(1, 1, 100));
  jobs_.add_job(make_job(2, 1, 200));
  locator_.add(0, 200);  // only job 2 has local work on node 0
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 2);
  EXPECT_TRUE(sel->node_local());
  EXPECT_NE(jobs_.job(1).waiting_since, kTimeNever);  // job 1 is waiting
}

TEST_F(FairTest, FairnessPrefersJobWithFewerRunningMaps) {
  FairScheduler sched(0);
  jobs_.add_job(make_job(1, 5, 100));
  jobs_.add_job(make_job(2, 5, 200));
  // Give job 1 two running maps.
  jobs_.launch_map(1, 0, Locality::kOffRack);
  jobs_.launch_map(1, 0, Locality::kOffRack);
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 2);
}

TEST_F(FairTest, ArrivalOrderBreaksFairnessTies) {
  FairScheduler sched(0);
  jobs_.add_job(make_job(1, 1, 100));
  jobs_.add_job(make_job(2, 1, 200));
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 1);
}

TEST_F(FairTest, LocalLaunchResetsDelayClock) {
  FairScheduler sched(from_seconds(10.0));
  jobs_.add_job(make_job(1, 2, 100));
  EXPECT_FALSE(sched.select_map(0, from_seconds(1.0), jobs_, locator_));
  EXPECT_NE(jobs_.job(1).waiting_since, kTimeNever);
  locator_.add(0, 100);
  const auto sel = sched.select_map(0, from_seconds(2.0), jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(sel->node_local());
  EXPECT_EQ(jobs_.job(1).waiting_since, kTimeNever);
}

TEST_F(FairTest, WaitingJobDoesNotBlockOthers) {
  FairScheduler sched(from_seconds(5.0));
  jobs_.add_job(make_job(1, 1, 100));  // fewest running, but never local
  jobs_.add_job(make_job(2, 1, 200));
  locator_.add(3, 200);
  const auto sel = sched.select_map(3, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 2);  // job 1 skipped, job 2 local
}

TEST_F(FairTest, ReducePrefersJobWithFewerRunningReduces) {
  FairScheduler sched(from_seconds(5.0));
  jobs_.add_job(make_job(1, 1, 100, 3));
  jobs_.add_job(make_job(2, 1, 200, 3));
  for (JobId j : {JobId{1}, JobId{2}}) {
    jobs_.launch_map(j, 0, Locality::kNodeLocal);
    jobs_.complete_map(j, 1);
  }
  jobs_.launch_reduce(1);
  const auto r = sched.select_reduce(jobs_);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 2);
}

TEST_F(FairTest, NoReduceBeforeMapsDone) {
  FairScheduler sched(from_seconds(5.0));
  jobs_.add_job(make_job(1, 2, 100, 1));
  jobs_.launch_map(1, 0, Locality::kNodeLocal);
  jobs_.complete_map(1, 1);
  EXPECT_FALSE(sched.select_reduce(jobs_).has_value());
}

TEST_F(FairTest, WeightedShareFavorsHeavyJob) {
  FairScheduler sched(0);
  auto heavy = make_job(1, 8, 100);
  heavy.weight = 4.0;
  auto light = make_job(2, 8, 200);
  light.weight = 1.0;
  jobs_.add_job(heavy);
  jobs_.add_job(light);
  // Give each one running map: shares are 1/4 vs 1/1 — the heavy job is
  // furthest below its entitlement and gets the next slot.
  jobs_.launch_map(1, 0, Locality::kOffRack);
  jobs_.launch_map(2, 0, Locality::kOffRack);
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 1);
}

TEST_F(FairTest, EqualWeightsReduceToPlainFairness) {
  FairScheduler sched(0);
  jobs_.add_job(make_job(1, 4, 100));
  jobs_.add_job(make_job(2, 4, 200));
  jobs_.launch_map(1, 0, Locality::kOffRack);
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 2);
}

TEST_F(FairTest, NonPositiveWeightTreatedAsOne) {
  FairScheduler sched(0);
  auto broken = make_job(1, 4, 100);
  broken.weight = 0.0;  // defensive: config mistakes must not divide by 0
  jobs_.add_job(broken);
  jobs_.add_job(make_job(2, 4, 200));
  jobs_.launch_map(2, 0, Locality::kOffRack);
  const auto sel = sched.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 1);
}

TEST_F(FairTest, HighDelayWithDistributedLocalityGivesAllLocal) {
  // Delay scheduling's core promise: with enough patience, every launch is
  // local when replicas are spread across nodes.
  FairScheduler sched(from_seconds(100.0));
  jobs_.add_job(make_job(1, 4, 100));
  locator_.add(0, 100);
  locator_.add(1, 101);
  locator_.add(2, 102);
  locator_.add(3, 103);
  int local_launches = 0;
  for (NodeId node = 0; node < 4; ++node) {
    const auto sel = sched.select_map(node, from_seconds(1.0), jobs_,
                                      locator_);
    if (sel) {
      EXPECT_TRUE(sel->node_local());
      jobs_.launch_map(sel->job, sel->pending_index, sel->locality);
      ++local_launches;
    }
  }
  EXPECT_EQ(local_launches, 4);
}

}  // namespace
}  // namespace dare::sched
