// Hyperscale-tier guarantees, end to end:
//
//  1. Streamed admission is an *optimization*, not a semantic: running a
//     WorkloadSpec through Cluster::run_stream must produce bit-identical
//     metrics (fingerprint equality) to materializing the same spec and
//     running the job vector through Cluster::run. This is the equivalence
//     oracle that lets BENCH_PR8 use streaming at every scale point while
//     BENCH_PR3 configurations stay pinned to their recorded fingerprints.
//
//  2. Residency stays O(active jobs): a streamed run releases each
//     JobRuntime at retirement, so the job table's high-water mark tracks
//     the live backlog, not the total job count. If this regresses, the
//     10k-node / 100k-job tier silently reverts to O(all jobs) memory and
//     the BENCH_PR8 RSS numbers become unreachable.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "metrics/run_metrics.h"
#include "net/profile.h"
#include "workload/workload.h"

namespace dare::cluster {
namespace {

workload::WorkloadOptions small_wl2_options(std::size_t jobs) {
  workload::WorkloadOptions wopts;
  wopts.num_jobs = jobs;
  wopts.seed = 11;
  return wopts;
}

void expect_stream_matches_materialized(SchedulerKind sched, PolicyKind pol) {
  const auto wopts = small_wl2_options(400);
  const auto spec = workload::make_wl2_spec(wopts);

  auto opts = paper_defaults(net::cct_profile(20), sched, pol, 42);
  opts.use_locality_index = true;

  Cluster streamed(opts);
  const auto stream_result = streamed.run_stream(spec);

  Cluster materialized(opts);
  const auto mat_result = materialized.run(workload::materialize(spec));

  EXPECT_EQ(metrics::fingerprint(stream_result),
            metrics::fingerprint(mat_result))
      << "streamed admission changed simulation behavior ("
      << scheduler_name(sched) << "/" << policy_name(pol) << ")";
}

TEST(StreamedAdmission, MatchesMaterializedFifoVanilla) {
  expect_stream_matches_materialized(SchedulerKind::kFifo,
                                     PolicyKind::kVanilla);
}

TEST(StreamedAdmission, MatchesMaterializedFifoElephantTrap) {
  expect_stream_matches_materialized(SchedulerKind::kFifo,
                                     PolicyKind::kElephantTrap);
}

TEST(StreamedAdmission, MatchesMaterializedFairElephantTrap) {
  expect_stream_matches_materialized(SchedulerKind::kFair,
                                     PolicyKind::kElephantTrap);
}

TEST(StreamedAdmission, LegacyScanPathAlsoMatches) {
  // The equivalence must hold in legacy (scan) mode too — streaming sits
  // above the scheduler, not inside it.
  const auto wopts = small_wl2_options(200);
  const auto spec = workload::make_wl2_spec(wopts);
  auto opts = paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                             PolicyKind::kVanilla, 42);
  opts.use_locality_index = false;
  Cluster streamed(opts);
  Cluster materialized(opts);
  EXPECT_EQ(metrics::fingerprint(streamed.run_stream(spec)),
            metrics::fingerprint(materialized.run(workload::materialize(spec))));
}

std::size_t peak_residency_of_streamed_run(std::size_t jobs) {
  auto wopts = small_wl2_options(jobs);
  // A stable arrival rate (the paper-calibrated default deliberately
  // overloads the cluster, which would make the backlog itself grow with
  // the job count and mask what this test measures).
  wopts.small_interarrival_s = 0.6;
  const auto spec = workload::make_wl2_spec(wopts);
  auto opts = paper_defaults(net::cct_profile(20), SchedulerKind::kFair,
                             PolicyKind::kElephantTrap, 42);
  opts.use_locality_index = true;
  Cluster sim(opts);
  sim.run_stream(spec);
  EXPECT_EQ(sim.job_table().released_jobs(), jobs);
  EXPECT_EQ(sim.job_table().resident_jobs(), 0u);
  return sim.job_table().peak_resident_jobs();
}

TEST(Residency, StreamedRunStaysOActive) {
  // The whole point of the tier: the job table's high-water mark tracks
  // the live backlog, not the submission count. Doubling the jobs of a
  // stable-load run must leave the peak essentially unchanged — a
  // regression to O(all jobs) doubles it instead.
  const std::size_t peak_short = peak_residency_of_streamed_run(600);
  const std::size_t peak_long = peak_residency_of_streamed_run(1200);
  EXPECT_GT(peak_short, 0u);
  EXPECT_LT(peak_long, 300u) << "backlog approaches the total job count";
  EXPECT_LE(peak_long, peak_short + peak_short / 2)
      << "peak residency scales with total jobs, not the active backlog";
}

TEST(Residency, MaterializedRunReleasesToo) {
  // run() shares run_with with run_stream: release-on-retire applies to
  // materialized workloads as well, keeping the two paths identical.
  const std::size_t kJobs = 300;
  const auto wl = workload::make_wl2(small_wl2_options(kJobs));
  auto opts = paper_defaults(net::cct_profile(20), SchedulerKind::kFifo,
                             PolicyKind::kVanilla, 42);
  opts.use_locality_index = true;
  Cluster sim(opts);
  sim.run(wl);
  EXPECT_EQ(sim.job_table().released_jobs(), kJobs);
  EXPECT_EQ(sim.job_table().resident_jobs(), 0u);
}

}  // namespace
}  // namespace dare::cluster
