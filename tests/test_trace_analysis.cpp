#include "analysis/trace_analysis.h"

#include <gtest/gtest.h>

namespace dare::analysis {
namespace {

using workload::AccessEvent;
using workload::AccessTrace;
using workload::TraceFileInfo;

AccessTrace tiny_trace() {
  AccessTrace trace;
  trace.span = from_seconds(1000.0);
  trace.files = {
      TraceFileInfo{0, from_seconds(0.0), 2},
      TraceFileInfo{1, from_seconds(100.0), 10},
      TraceFileInfo{2, from_seconds(200.0), 1},
  };
  // File 0: 3 accesses, file 1: 2 accesses, file 2: 0 accesses.
  trace.events = {
      AccessEvent{0, from_seconds(10.0)},
      AccessEvent{0, from_seconds(20.0)},
      AccessEvent{1, from_seconds(150.0)},
      AccessEvent{0, from_seconds(300.0)},
      AccessEvent{1, from_seconds(400.0)},
  };
  return trace;
}

TEST(PopularityRanking, SortsByAccessCount) {
  const auto ranking = popularity_ranking(tiny_trace());
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].file, 0);
  EXPECT_EQ(ranking[0].accesses, 3u);
  EXPECT_EQ(ranking[1].file, 1);
  EXPECT_EQ(ranking[1].accesses, 2u);
  EXPECT_EQ(ranking[2].accesses, 0u);
}

TEST(PopularityRanking, WeightedRankingUsesBlockCounts) {
  const auto ranking = weighted_popularity_ranking(tiny_trace());
  // File 1: 2 accesses x 10 blocks = 20 beats file 0: 3 x 2 = 6.
  EXPECT_EQ(ranking[0].file, 1);
  EXPECT_EQ(ranking[0].weighted(), 20u);
  EXPECT_EQ(ranking[1].file, 0);
}

TEST(AgeCdf, ComputesAgesRelativeToCreation) {
  const auto cdf = age_at_access_cdf(tiny_trace());
  EXPECT_EQ(cdf.count(), 5u);
  // Ages: 10, 20, 50, 300, 300 seconds.
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(20.0), 0.4);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(50.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(300.0), 1.0);
}

TEST(AgeCdf, UnknownFileThrows) {
  auto trace = tiny_trace();
  trace.events.push_back(AccessEvent{99, from_seconds(5.0)});
  EXPECT_THROW(age_at_access_cdf(trace), std::invalid_argument);
}

TEST(MinimalWindow, SingleBurstIsOneSlot) {
  const std::vector<SimTime> times = {
      from_seconds(0.0), from_seconds(10.0), from_seconds(20.0)};
  EXPECT_EQ(minimal_window_slots(times, from_seconds(3600.0), 0.8), 1u);
}

TEST(MinimalWindow, SpreadAccessesNeedWiderWindow) {
  // 10 accesses, one per hour: 80% needs 8 consecutive hourly slots.
  std::vector<SimTime> times;
  for (int h = 0; h < 10; ++h) {
    times.push_back(from_seconds(h * 3600.0 + 10.0));
  }
  EXPECT_EQ(minimal_window_slots(times, from_seconds(3600.0), 0.8), 8u);
}

TEST(MinimalWindow, DenseCoreIgnoresOutliers) {
  // 8 accesses in one slot + 2 stragglers far away: window of 1 covers 80%.
  std::vector<SimTime> times;
  for (int i = 0; i < 8; ++i) times.push_back(from_seconds(100.0 + i));
  times.push_back(from_seconds(50 * 3600.0));
  times.push_back(from_seconds(90 * 3600.0));
  std::sort(times.begin(), times.end());
  EXPECT_EQ(minimal_window_slots(times, from_seconds(3600.0), 0.8), 1u);
}

TEST(MinimalWindow, EmptyAndInvalidInputs) {
  EXPECT_EQ(minimal_window_slots({}, from_seconds(3600.0), 0.8), 0u);
  EXPECT_THROW(minimal_window_slots({from_seconds(1.0)}, 0, 0.8),
               std::invalid_argument);
}

TEST(WindowDistribution, FractionsSumToOne) {
  WindowOptions opts;
  const auto dist = burst_window_distribution(tiny_trace(), opts);
  double total = 0.0;
  for (double f : dist.fraction) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(dist.files_considered, 0u);
}

TEST(WindowDistribution, BigFileFilterDropsColdFiles) {
  WindowOptions opts;
  opts.big_file_fraction = 0.5;
  const auto dist = burst_window_distribution(tiny_trace(), opts);
  // File 0 alone holds 60% >= 50% of accesses: only it is considered.
  EXPECT_EQ(dist.files_considered, 1u);
}

TEST(WindowDistribution, DayFilterRestrictsEvents) {
  auto trace = tiny_trace();
  WindowOptions opts;
  opts.begin = from_seconds(0.0);
  opts.end = from_seconds(100.0);  // only file 0's first two accesses
  opts.big_file_fraction = 1.0;
  const auto dist = burst_window_distribution(trace, opts);
  EXPECT_EQ(dist.files_considered, 1u);
  ASSERT_GE(dist.fraction.size(), 2u);
  EXPECT_DOUBLE_EQ(dist.fraction[1], 1.0);
}

TEST(MaxInWindow, CountsDensestInterval) {
  const std::vector<SimTime> times = {0, 10, 20, 100, 105, 110, 115, 500};
  EXPECT_EQ(max_in_window(times, 30), 4u);   // 100..115
  EXPECT_EQ(max_in_window(times, 11), 3u);  // 100, 105, 110
  EXPECT_EQ(max_in_window(times, 1000), 8u);
  EXPECT_EQ(max_in_window({}, 10), 0u);
  EXPECT_THROW(max_in_window(times, 0), std::invalid_argument);
}

TEST(PeakConcurrency, RanksByAccessesAndFindsBursts) {
  workload::AccessTrace trace;
  trace.span = from_seconds(1000.0);
  trace.files = {workload::TraceFileInfo{0, 0, 1},
                 workload::TraceFileInfo{1, 0, 1}};
  // File 0: 5 accesses, 3 of them within one second.
  for (double t : {1.0, 1.2, 1.5, 100.0, 200.0}) {
    trace.events.push_back({0, from_seconds(t)});
  }
  // File 1: 2 accesses, far apart.
  trace.events.push_back({1, from_seconds(10.0)});
  trace.events.push_back({1, from_seconds(500.0)});

  const auto entries = peak_concurrency(trace, from_seconds(1.0));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].file, 0);
  EXPECT_EQ(entries[0].accesses, 5u);
  EXPECT_EQ(entries[0].peak_concurrency, 3u);
  EXPECT_EQ(entries[1].file, 1);
  EXPECT_EQ(entries[1].peak_concurrency, 1u);
}

TEST(PeakConcurrency, PopularFilesBurstHarderInYahooTrace) {
  workload::YahooTraceOptions opts;
  opts.files = 200;
  opts.total_accesses = 20000;
  opts.seed = 12;
  const auto trace = workload::generate_yahoo_trace(opts);
  const auto entries = peak_concurrency(trace, from_seconds(3600.0));
  // The head of the popularity distribution sees real concurrency; the
  // tail does not — the paper's hotspot motivation.
  EXPECT_GT(entries.front().peak_concurrency, 20u);
  EXPECT_LE(entries.back().peak_concurrency, 2u);
}

TEST(WindowDistribution, WeightedByAccessesShiftsMass) {
  // Two files: one bursty with many accesses, one spread with few.
  AccessTrace trace;
  trace.span = from_seconds(100 * 3600.0);
  trace.files = {TraceFileInfo{0, 0, 1}, TraceFileInfo{1, 0, 1}};
  for (int i = 0; i < 20; ++i) {
    trace.events.push_back(AccessEvent{0, from_seconds(10.0 + i)});
  }
  for (int h = 0; h < 5; ++h) {
    trace.events.push_back(AccessEvent{1, from_seconds(h * 3600.0 + 5.0)});
  }
  WindowOptions plain;
  plain.big_file_fraction = 1.0;
  const auto unweighted = burst_window_distribution(trace, plain);
  WindowOptions weighted = plain;
  weighted.weight_by_accesses = true;
  const auto by_access = burst_window_distribution(trace, weighted);
  // Equal weight: 50/50 between window 1 and window 4.
  EXPECT_NEAR(unweighted.fraction[1], 0.5, 1e-9);
  // Weighted: the bursty file's 20 accesses dominate.
  EXPECT_GT(by_access.fraction[1], 0.75);
}

}  // namespace
}  // namespace dare::analysis
