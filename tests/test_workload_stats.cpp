#include "workload/workload_stats.h"

#include <gtest/gtest.h>

#include "workload/trace_io.h"

namespace dare::workload {
namespace {

TEST(WorkloadStats, EmptyWorkloadSafe) {
  Workload wl;
  wl.catalog.push_back(FileSpec{"f", 1});
  const auto stats = characterize(wl);
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.mean_maps, 0.0);
}

TEST(WorkloadStats, HandComputedTinyTrace) {
  const auto wl = workload_from_string(
      "workload tiny\n"
      "blocksize 1048576\n"
      "file 1\n"
      "file 4\n"
      "job 0       0 1 1000 1000 100\n"
      "job 5000000 0 1 1000 1000 100\n"
      "job 10000000 1 1 1000 1000 200\n");
  const auto stats = characterize(wl);
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_EQ(stats.files, 2u);
  EXPECT_NEAR(stats.mean_maps, 2.0, 1e-12);  // (1 + 1 + 4) / 3
  EXPECT_NEAR(stats.max_maps, 4.0, 1e-12);
  EXPECT_NEAR(stats.small_job_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.duration_s, 10.0, 1e-9);
  EXPECT_NEAR(stats.mean_interarrival_s, 5.0, 1e-9);
  EXPECT_EQ(stats.total_input_bytes, Bytes{6 * 1048576});
  EXPECT_EQ(stats.total_shuffle_bytes, Bytes{400});
}

TEST(WorkloadStats, Wl1IsSmallJobStream) {
  WorkloadOptions opts;
  opts.num_jobs = 400;
  opts.seed = 3;
  const auto stats = characterize(make_wl1(opts));
  // "A long sequence of small jobs": essentially every job tiny.
  EXPECT_GT(stats.small_job_fraction, 0.95);
  EXPECT_LT(stats.mean_maps, 3.0);
}

TEST(WorkloadStats, Wl2HasLargeJobTail) {
  WorkloadOptions opts;
  opts.num_jobs = 400;
  opts.seed = 3;
  const auto stats = characterize(make_wl2(opts));
  EXPECT_GT(stats.max_maps, 10.0);           // periodic large scans
  EXPECT_GT(stats.small_job_fraction, 0.8);  // still mostly small jobs
}

TEST(WorkloadStats, PopularitySkewReflectsZipf) {
  WorkloadOptions opts;
  opts.num_jobs = 1000;
  opts.seed = 4;
  const auto stats = characterize(make_wl1(opts));
  // Zipf(1.4) over 100 files: top 10 files hold well over half the mass.
  EXPECT_GT(stats.top_decile_access_share, 0.55);
}

TEST(WorkloadStats, PeakRateAtLeastMeanRate) {
  WorkloadOptions opts;
  opts.num_jobs = 300;
  opts.seed = 5;
  const auto stats = characterize(make_wl2(opts));
  const double mean_rate = 1.0 / stats.mean_interarrival_s;
  EXPECT_GE(stats.peak_rate_jobs_per_s, mean_rate);
}

}  // namespace
}  // namespace dare::workload
