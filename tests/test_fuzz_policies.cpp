// Model-based randomized tests ("fuzz") for the replication policies and
// the event queue: drive thousands of random operations and check every
// externally observable invariant after each step, plus cross-check the
// greedy-LRU policy against an executable reference model.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/elephant_trap.h"
#include "core/greedy_lru.h"
#include "core/lfu.h"
#include "net/profile.h"
#include "sim/event_queue.h"

namespace dare {
namespace {

storage::BlockMeta blk(BlockId id, FileId file, Bytes size) {
  return storage::BlockMeta{id, file, size};
}

/// Executable reference model of Algorithm 1 (greedy LRU with same-file
/// protection), tracking only block ids.
class LruModel {
 public:
  explicit LruModel(Bytes budget) : budget_(budget) {}

  /// Mirrors GreedyLruPolicy::on_map_task; returns replicated?
  bool access(BlockId id, FileId file, Bytes size, bool local) {
    if (local || contains(id)) {
      touch(id);
      return false;
    }
    if (size > budget_) return false;
    // Evict LRU victims, skipping same-file blocks (rotate to MRU).
    std::size_t examined = 0;
    const std::size_t limit = order_.size();
    while (used_ + size > budget_ && examined < limit) {
      ++examined;
      const auto victim = order_.front();
      order_.pop_front();
      if (victim.file == file) {
        order_.push_back(victim);
        continue;
      }
      used_ -= victim.size;
      ids_.erase(victim.id);
    }
    if (used_ + size > budget_) return false;
    order_.push_back(Entry{id, file, size});
    ids_.insert(id);
    used_ += size;
    return true;
  }

  bool contains(BlockId id) const { return ids_.count(id) != 0; }
  Bytes used() const { return used_; }
  std::size_t size() const { return ids_.size(); }

 private:
  struct Entry {
    BlockId id;
    FileId file;
    Bytes size;
  };
  void touch(BlockId id) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->id == id) {
        order_.splice(order_.end(), order_, it);
        return;
      }
    }
  }
  Bytes budget_;
  Bytes used_ = 0;
  std::list<Entry> order_;
  std::set<BlockId> ids_;
};

TEST(FuzzGreedyLru, MatchesReferenceModel) {
  Rng rng(101);
  storage::DataNode node(0, net::cct_profile().disk, rng);
  const Bytes budget = 1000;
  core::GreedyLruPolicy policy(node, budget);
  LruModel model(budget);

  Rng ops(202);
  for (int step = 0; step < 20000; ++step) {
    const auto id = static_cast<BlockId>(ops.uniform_int(std::uint64_t{40}));
    const FileId file = id / 3;  // a few blocks per file
    const Bytes size = 100 + 50 * (id % 3);
    // "local" mirrors reality: the node already has the block.
    const bool local = node.has_visible_block(id);
    ASSERT_EQ(local, model.contains(id)) << "step " << step;
    const bool replicated = policy.on_map_task(blk(id, file, size), local);
    const bool model_replicated = model.access(id, file, size, local);
    ASSERT_EQ(replicated, model_replicated) << "step " << step;
    ASSERT_EQ(node.dynamic_bytes(), model.used()) << "step " << step;
    ASSERT_LE(node.dynamic_bytes(), budget);
    node.reclaim_marked();
  }
  EXPECT_EQ(node.dynamic_blocks().size(), model.size());
}

TEST(FuzzElephantTrap, InvariantsUnderRandomOps) {
  Rng rng(303);
  storage::DataNode node(0, net::cct_profile().disk, rng);
  const Bytes budget = 1200;
  core::ElephantTrapParams params;
  params.p = 0.6;
  params.threshold = 2;
  core::ElephantTrapPolicy policy(node, budget, params, rng);

  Rng ops(404);
  std::uint64_t created_before = 0;
  for (int step = 0; step < 30000; ++step) {
    const auto id = static_cast<BlockId>(ops.uniform_int(std::uint64_t{60}));
    const FileId file = id / 4;
    const Bytes size = 100 + 25 * (id % 5);
    const bool local = node.has_visible_block(id);
    const bool replicated = policy.on_map_task(blk(id, file, size), local);

    // Invariants after every step:
    ASSERT_LE(node.dynamic_bytes(), budget) << "step " << step;
    ASSERT_EQ(policy.tracked_blocks(), node.dynamic_blocks().size())
        << "step " << step;
    if (replicated) {
      ASSERT_FALSE(local);
      ASSERT_TRUE(node.has_dynamic_block(id));
      ASSERT_EQ(policy.replicas_created(), created_before + 1);
    }
    created_before = policy.replicas_created();
    // A local access can never create a replica.
    if (local) { ASSERT_FALSE(replicated); }
    if (step % 7 == 0) node.reclaim_marked();
  }
  // The policy never lies about its contents.
  for (BlockId id : node.dynamic_blocks()) {
    EXPECT_GE(policy.access_count(id), 0u);
  }
}

TEST(FuzzLfu, InvariantsUnderRandomOps) {
  Rng rng(505);
  storage::DataNode node(0, net::cct_profile().disk, rng);
  const Bytes budget = 800;
  core::GreedyLfuPolicy policy(node, budget);

  Rng ops(606);
  for (int step = 0; step < 20000; ++step) {
    const auto id = static_cast<BlockId>(ops.uniform_int(std::uint64_t{30}));
    const FileId file = id / 2;
    const bool local = node.has_visible_block(id);
    policy.on_map_task(blk(id, file, 100), local);
    ASSERT_LE(node.dynamic_bytes(), budget);
    ASSERT_EQ(policy.tracked_blocks(), node.dynamic_blocks().size());
    node.reclaim_marked();
  }
}

TEST(FuzzEventQueue, MatchesExactPendingSetModel) {
  // Reference model: the set of pending (when, tag) pairs, ordered by
  // (when, tag) — tags are assigned in scheduling order, so this is exactly
  // the queue's documented (time, insertion) order. Each pop must fire the
  // model's minimum; cancels remove arbitrary pending entries.
  Rng ops(707);
  sim::EventQueue queue;
  std::map<std::pair<SimTime, int>, sim::EventHandle> pending;
  std::vector<std::pair<SimTime, int>> fired;
  int next_tag = 0;

  for (int step = 0; step < 8000; ++step) {
    const double dice = ops.uniform();
    if (dice < 0.55) {
      const auto when =
          static_cast<SimTime>(ops.uniform_int(std::uint64_t{1000}));
      const int tag = next_tag++;
      auto handle = queue.schedule(
          when, [&fired, when, tag] { fired.emplace_back(when, tag); });
      pending.emplace(std::make_pair(when, tag), std::move(handle));
    } else if (dice < 0.7 && !pending.empty()) {
      // Cancel a pseudo-random pending entry.
      auto it = pending.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           ops.uniform_int(pending.size())));
      ASSERT_TRUE(it->second.cancel());
      pending.erase(it);
    } else if (!queue.empty()) {
      const auto expected = pending.begin()->first;
      const std::size_t fired_before = fired.size();
      queue.pop_and_run();
      ASSERT_EQ(fired.size(), fired_before + 1) << "step " << step;
      ASSERT_EQ(fired.back(), expected) << "step " << step;
      pending.erase(pending.begin());
    }
    ASSERT_EQ(queue.size(), pending.size()) << "step " << step;
    ASSERT_EQ(queue.empty(), pending.empty()) << "step " << step;
    if (!pending.empty()) {
      ASSERT_EQ(queue.next_time(), pending.begin()->first.first)
          << "step " << step;
    }
  }
  while (!queue.empty()) {
    const auto expected = pending.begin()->first;
    queue.pop_and_run();
    ASSERT_EQ(fired.back(), expected);
    pending.erase(pending.begin());
  }
  EXPECT_TRUE(pending.empty());
}

}  // namespace
}  // namespace dare
