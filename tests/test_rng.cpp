#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dare {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(10);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_int(std::uint64_t{10})];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-2}, std::int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fa.next(), fb.next());
  }
  // Parent streams remain in lockstep after forking.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(99);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next() == c2.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  // Regression pin so draws stay identical across refactors.
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(a, splitmix64(state2));
  EXPECT_EQ(b, splitmix64(state2));
}

TEST(Rng, OutputsLookWellDistributed) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in 1000 draws
}

}  // namespace
}  // namespace dare
