// End-to-end equivalence oracle for the locality-indexed scheduler path.
//
// use_locality_index toggles three hot-path replacements at once (inverted
// locality index, incremental fair-share ordering, cached inverse weights).
// All of them are claimed to be *bit-identical* rewrites of the legacy
// scan/sort code, so for any configuration the two modes must produce the
// same metrics::fingerprint — including under chaos-level node churn, where
// the index has to absorb death sweeps, rejoin reconciliation, and replica
// evictions without drifting from the name node.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "common/invariant.h"
#include "metrics/run_metrics.h"
#include "net/profile.h"

namespace dare::cluster {
namespace {

[[noreturn]] void throwing_handler(const InvariantViolation& v) {
  throw std::logic_error("invariant violated: " + v.message);
}

class ThrowOnInvariant {
 public:
  ThrowOnInvariant() : previous_(set_invariant_handler(&throwing_handler)) {}
  ~ThrowOnInvariant() { set_invariant_handler(previous_); }

 private:
  InvariantHandler previous_;
};

std::uint64_t fingerprint_with(ClusterOptions opts,
                               const workload::Workload& wl,
                               bool use_index) {
  opts.use_locality_index = use_index;
  return metrics::fingerprint(run_once(opts, wl));
}

using Combo = std::tuple<SchedulerKind, PolicyKind>;

class SchedEquivalence : public ::testing::TestWithParam<Combo> {};

TEST_P(SchedEquivalence, PaperDefaultsFingerprintMatchesLegacy) {
  ThrowOnInvariant guard;
  const auto [scheduler, policy] = GetParam();
  const auto opts =
      paper_defaults(net::cct_profile(20), scheduler, policy, 42);
  const auto wl = standard_wl1(20, 60, 1);
  EXPECT_EQ(fingerprint_with(opts, wl, true),
            fingerprint_with(opts, wl, false))
      << scheduler_name(scheduler) << "/" << policy_name(policy);
}

TEST_P(SchedEquivalence, ChaosChurnFingerprintMatchesLegacy) {
  ThrowOnInvariant guard;
  const auto [scheduler, policy] = GetParam();
  // Mirrors the chaos-soak configuration: stochastic transient + permanent
  // failures with rack correlation, injected task failures, aggressive
  // re-replication — every index-reconciliation path fires.
  auto opts = paper_defaults(net::ec2_profile(10), scheduler, policy, 7);
  opts.faults.enabled = true;
  opts.faults.mtbf_s = 60.0;
  opts.faults.mttr_s = 20.0;
  opts.faults.permanent_fraction = 0.25;
  opts.faults.rack_correlation = 0.3;
  opts.faults.task_failure_prob = 0.01;
  opts.faults.min_live_workers = 4;
  opts.rereplication_interval = from_seconds(2.0);
  opts.rereplication_batch = 32;

  workload::WorkloadOptions wopts;
  wopts.num_jobs = 50;
  wopts.seed = 7;
  wopts.catalog.small_files = 16;
  wopts.catalog.large_files = 2;
  wopts.catalog.large_min_blocks = 5;
  wopts.catalog.large_max_blocks = 8;
  const auto wl = workload::make_wl1(wopts);

  EXPECT_EQ(fingerprint_with(opts, wl, true),
            fingerprint_with(opts, wl, false))
      << scheduler_name(scheduler) << "/" << policy_name(policy);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, SchedEquivalence,
    ::testing::Combine(::testing::Values(SchedulerKind::kFifo,
                                         SchedulerKind::kFair),
                       ::testing::Values(PolicyKind::kVanilla,
                                         PolicyKind::kGreedyLru,
                                         PolicyKind::kElephantTrap)));

// Speculative execution consults the locator on its own path; make sure the
// indexed mode agrees there too.
TEST(SchedEquivalenceSpeculation, SpeculationFingerprintMatchesLegacy) {
  ThrowOnInvariant guard;
  auto opts = paper_defaults(net::ec2_profile(10), SchedulerKind::kFair,
                             PolicyKind::kElephantTrap, 11);
  opts.enable_speculation = true;
  const auto wl = standard_wl1(10, 40, 3);
  EXPECT_EQ(fingerprint_with(opts, wl, true),
            fingerprint_with(opts, wl, false));
}

}  // namespace
}  // namespace dare::cluster
