// Data-integrity subsystem tests: parameter validation at cluster
// construction, DataNode corruption/quarantine semantics, NameNode
// bad-block handling (including last-good-replica protection), policy
// quarantine refusal, and end-to-end scripted/stochastic corruption runs
// with detection, quarantine, repair, and data-loss accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "core/elephant_trap.h"
#include "core/greedy_lru.h"
#include "core/lfu.h"
#include "faults/fault_model.h"
#include "storage/datanode.h"
#include "storage/namenode.h"

namespace dare {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Runs `fn`, requiring it to throw std::invalid_argument whose message
/// names the offending field.
template <typename Fn>
void expect_rejects(Fn fn, const std::string& field) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

// --- parameter validation (one test per rejected field) -------------------

TEST(CorruptionValidation, RejectsNonPositiveMtbf) {
  faults::FaultInjectionParams p;
  p.mtbf_s = -1.0;
  expect_rejects([&] { faults::validate_fault_params(p, 10); }, "mtbf_s");
  p.mtbf_s = kNaN;
  expect_rejects([&] { faults::validate_fault_params(p, 10); }, "mtbf_s");
}

TEST(CorruptionValidation, RejectsNonPositiveMttr) {
  faults::FaultInjectionParams p;
  p.mttr_s = 0.0;
  expect_rejects([&] { faults::validate_fault_params(p, 10); }, "mttr_s");
  p.mttr_s = kNaN;
  expect_rejects([&] { faults::validate_fault_params(p, 10); }, "mttr_s");
}

TEST(CorruptionValidation, RejectsPermanentFractionOutsideUnitInterval) {
  faults::FaultInjectionParams p;
  p.permanent_fraction = 1.5;
  expect_rejects([&] { faults::validate_fault_params(p, 10); },
                 "permanent_fraction");
}

TEST(CorruptionValidation, RejectsRackCorrelationOutsideUnitInterval) {
  faults::FaultInjectionParams p;
  p.rack_correlation = -0.1;
  expect_rejects([&] { faults::validate_fault_params(p, 10); },
                 "rack_correlation");
}

TEST(CorruptionValidation, RejectsNaNTaskFailureProb) {
  faults::FaultInjectionParams p;
  p.task_failure_prob = kNaN;
  expect_rejects([&] { faults::validate_fault_params(p, 10); },
                 "task_failure_prob");
}

TEST(CorruptionValidation, RejectsLiveWorkerFloorAtOrAboveWorkerCount) {
  faults::FaultInjectionParams p;
  p.min_live_workers = 10;
  // The floor only bites when the injector is enabled.
  EXPECT_NO_THROW(faults::validate_fault_params(p, 10));
  p.enabled = true;
  expect_rejects([&] { faults::validate_fault_params(p, 10); },
                 "min_live_workers");
}

TEST(CorruptionValidation, RejectsNegativeBitrot) {
  faults::CorruptionParams p;
  p.bitrot_per_gb = -0.5;
  expect_rejects([&] { faults::validate_corruption_params(p); },
                 "bitrot_per_gb");
  p.bitrot_per_gb = kNaN;
  expect_rejects([&] { faults::validate_corruption_params(p); },
                 "bitrot_per_gb");
}

TEST(CorruptionValidation, RejectsNegativeSectorMtbf) {
  faults::CorruptionParams p;
  p.sector_mtbf_s = -3.0;
  expect_rejects([&] { faults::validate_corruption_params(p); },
                 "sector_mtbf_s");
}

TEST(CorruptionValidation, RejectsEnabledCorruptionWithNoRates) {
  faults::CorruptionParams p;
  p.enabled = true;  // both rates at their 0.0 defaults: nothing to inject
  expect_rejects([&] { faults::validate_corruption_params(p); }, "enabled");
}

TEST(CorruptionValidation, ClusterConstructorValidatesFaultParams) {
  auto opts = cluster::paper_defaults(net::cct_profile(10),
                                      cluster::SchedulerKind::kFifo,
                                      cluster::PolicyKind::kVanilla);
  opts.faults.enabled = true;
  opts.faults.mtbf_s = 60.0;
  opts.faults.min_live_workers = 9;  // == worker count (10 nodes, 1 master)
  expect_rejects([&] { cluster::Cluster c(opts); }, "min_live_workers");
}

TEST(CorruptionValidation, ClusterConstructorValidatesCorruptionParams) {
  auto opts = cluster::paper_defaults(net::cct_profile(10),
                                      cluster::SchedulerKind::kFifo,
                                      cluster::PolicyKind::kVanilla);
  opts.corruption.enabled = true;
  opts.corruption.bitrot_per_gb = -1.0;
  expect_rejects([&] { cluster::Cluster c(opts); }, "bitrot_per_gb");
}

// --- DataNode corruption / quarantine lifecycle ---------------------------

class DataNodeCorruptionTest : public ::testing::Test {
 protected:
  storage::BlockMeta blk(BlockId id, FileId file = 0, Bytes size = 100) {
    return {id, file, size};
  }

  Rng rng_{7};
  storage::DataNode node_{0, net::cct_profile().disk, rng_};
};

TEST_F(DataNodeCorruptionTest, CorruptReplicaMarksPhysicalCopy) {
  node_.add_static_block(blk(1));
  EXPECT_FALSE(node_.is_corrupt(1));
  EXPECT_TRUE(node_.corrupt_replica(1));
  EXPECT_TRUE(node_.is_corrupt(1));
  // Idempotent: re-corrupting an already-corrupt copy reports nothing new.
  EXPECT_FALSE(node_.corrupt_replica(1));
  // Corrupting a block with no physical copy is a no-op.
  EXPECT_FALSE(node_.corrupt_replica(99));
  EXPECT_FALSE(node_.is_corrupt(99));
}

TEST_F(DataNodeCorruptionTest, QuarantineDropsCopyAndBansAdoption) {
  node_.add_static_block(blk(1));
  ASSERT_TRUE(node_.corrupt_replica(1));
  EXPECT_TRUE(node_.quarantine_replica(1));
  EXPECT_FALSE(node_.has_any_copy(1));
  EXPECT_TRUE(node_.is_quarantined(1));
  EXPECT_FALSE(node_.is_corrupt(1));  // no copy left to be corrupt
  // A quarantined block may not be re-adopted as a dynamic replica.
  EXPECT_FALSE(node_.insert_dynamic(blk(1)));
  EXPECT_FALSE(node_.has_dynamic_block(1));
}

TEST_F(DataNodeCorruptionTest, FreshAuthoritativeCopyLiftsQuarantine) {
  node_.add_static_block(blk(1));
  ASSERT_TRUE(node_.quarantine_replica(1));
  ASSERT_TRUE(node_.is_quarantined(1));
  // A repair copy arrives via the authoritative (static) path: the
  // quarantine lifts and the copy is clean.
  node_.add_static_block(blk(1));
  EXPECT_FALSE(node_.is_quarantined(1));
  EXPECT_TRUE(node_.has_static_block(1));
  EXPECT_FALSE(node_.is_corrupt(1));
}

TEST_F(DataNodeCorruptionTest, QuarantineCoversTombstonedReplicas) {
  ASSERT_TRUE(node_.insert_dynamic(blk(2)));
  ASSERT_TRUE(node_.mark_for_deletion(2));
  EXPECT_TRUE(node_.has_any_copy(2));  // tombstoned, still on disk
  EXPECT_TRUE(node_.quarantine_replica(2));
  EXPECT_FALSE(node_.has_any_copy(2));
  EXPECT_TRUE(node_.is_quarantined(2));
  // Quarantining a block with no physical copy reports false.
  EXPECT_FALSE(node_.quarantine_replica(42));
}

TEST_F(DataNodeCorruptionTest, CorruptBlocksListedSorted) {
  node_.add_static_block(blk(5));
  node_.add_static_block(blk(2));
  ASSERT_TRUE(node_.insert_dynamic(blk(9)));
  ASSERT_TRUE(node_.corrupt_replica(9));
  ASSERT_TRUE(node_.corrupt_replica(2));
  ASSERT_TRUE(node_.corrupt_replica(5));
  const auto corrupt = node_.corrupt_blocks();
  ASSERT_EQ(corrupt.size(), 3u);
  EXPECT_TRUE(std::is_sorted(corrupt.begin(), corrupt.end()));
}

// --- NameNode bad-block handling ------------------------------------------

TEST(NameNodeBadBlock, QuarantineRemovesLocationUntilLastReplica) {
  Rng rng{11};
  storage::NameNode nn(10, nullptr, rng);
  const FileId f = nn.create_file("a", 1, kMiB, 3, 0);
  const BlockId b = nn.file(f).blocks[0];
  auto locs = nn.locations(b);
  ASSERT_EQ(locs.size(), 3u);

  EXPECT_EQ(nn.report_bad_block(b, locs[0]),
            storage::NameNode::BadBlockResult::kQuarantined);
  EXPECT_EQ(nn.locations(b).size(), 2u);
  EXPECT_TRUE(nn.is_under_replicated(b));
  // A repeated report from the same (already-removed) holder is stale.
  EXPECT_EQ(nn.report_bad_block(b, locs[0]),
            storage::NameNode::BadBlockResult::kStaleReport);

  EXPECT_EQ(nn.report_bad_block(b, locs[1]),
            storage::NameNode::BadBlockResult::kQuarantined);
  ASSERT_EQ(nn.locations(b).size(), 1u);

  // Last-good-replica protection: the final copy is reported corrupt but
  // never removed from the location list.
  EXPECT_EQ(nn.report_bad_block(b, locs[2]),
            storage::NameNode::BadBlockResult::kLastReplica);
  ASSERT_EQ(nn.locations(b).size(), 1u);
  EXPECT_EQ(nn.locations(b)[0], locs[2]);
  // And it stays protected on every further report.
  EXPECT_EQ(nn.report_bad_block(b, locs[2]),
            storage::NameNode::BadBlockResult::kLastReplica);
  EXPECT_EQ(nn.locations(b).size(), 1u);
}

TEST(NameNodeBadBlock, UnknownBlockThrows) {
  Rng rng{11};
  storage::NameNode nn(4, nullptr, rng);
  EXPECT_THROW(nn.report_bad_block(BlockId{1234}, NodeId{0}),
               std::out_of_range);
}

// --- replication policies refuse quarantined replicas ---------------------

class PolicyQuarantineTest : public ::testing::Test {
 protected:
  storage::BlockMeta blk(BlockId id, FileId file = 0, Bytes size = 100) {
    return {id, file, size};
  }

  /// Put `id` into quarantine: give the node a copy, then drop it the way
  /// the cluster glue does after a bad-block report.
  void quarantine(BlockId id) {
    node_.add_static_block(blk(id, /*file=*/99));
    ASSERT_TRUE(node_.quarantine_replica(id));
  }

  Rng rng_{31};
  storage::DataNode node_{0, net::cct_profile().disk, rng_};
};

TEST_F(PolicyQuarantineTest, GreedyLruRefusesQuarantinedBlock) {
  core::GreedyLruPolicy policy(node_, 1000);
  quarantine(1);
  EXPECT_FALSE(policy.on_map_task(blk(1), /*local=*/false));
  EXPECT_FALSE(node_.has_dynamic_block(1));
  EXPECT_EQ(policy.replicas_created(), 0u);
  // Other blocks replicate as usual.
  EXPECT_TRUE(policy.on_map_task(blk(2), /*local=*/false));
}

TEST_F(PolicyQuarantineTest, GreedyLfuRefusesQuarantinedBlock) {
  core::GreedyLfuPolicy policy(node_, 1000);
  quarantine(1);
  EXPECT_FALSE(policy.on_map_task(blk(1), /*local=*/false));
  EXPECT_FALSE(node_.has_dynamic_block(1));
  EXPECT_TRUE(policy.on_map_task(blk(2), /*local=*/false));
}

TEST_F(PolicyQuarantineTest, ElephantTrapRefusesQuarantinedBlock) {
  // p = 1.0: the sampling coin always passes, so the refusal below can only
  // come from the quarantine check.
  core::ElephantTrapPolicy policy(node_, 1000, {1.0, 1}, rng_);
  quarantine(1);
  EXPECT_FALSE(policy.on_map_task(blk(1), /*local=*/false));
  EXPECT_FALSE(node_.has_dynamic_block(1));
  EXPECT_TRUE(policy.on_map_task(blk(2), /*local=*/false));
}

TEST_F(PolicyQuarantineTest, RebuildDropsQuarantinedBlocks) {
  // Rejoin reconciliation rebuilds each policy from a replica list; any
  // entry that was quarantined in the meantime must be filtered out.
  quarantine(1);
  const std::vector<storage::BlockMeta> live = {blk(1), blk(2)};

  core::GreedyLruPolicy lru(node_, 1000);
  lru.rebuild(live);
  core::GreedyLfuPolicy lfu(node_, 1000);
  lfu.rebuild(live);
  core::ElephantTrapPolicy trap(node_, 1000, {1.0, 1}, rng_);
  trap.rebuild(live);

  // The rebuilt state must not resurrect block 1: a later local access to
  // block 2 (tracked) works, and block 1 is still refused.
  EXPECT_FALSE(lru.on_map_task(blk(1), false));
  EXPECT_FALSE(lfu.on_map_task(blk(1), false));
  EXPECT_FALSE(trap.on_map_task(blk(1), false));
}

TEST_F(PolicyQuarantineTest, OnReplicaDroppedKeepsIndexesConsistent) {
  // Quarantine drops replicas behind the policies' back; on_replica_dropped
  // must keep their internal indexes exact so later traffic neither crashes
  // nor double-frees budget. Exercise all three policies through an
  // adopt -> drop -> keep-going cycle.
  core::GreedyLruPolicy lru(node_, 300);
  ASSERT_TRUE(lru.on_map_task(blk(10), false));
  ASSERT_TRUE(lru.on_map_task(blk(11), false));
  // The cluster glue quarantines block 10: physical drop + policy callback.
  ASSERT_TRUE(node_.quarantine_replica(10));
  lru.on_replica_dropped(10);
  // Dropping an untracked block is a no-op.
  lru.on_replica_dropped(999);
  // Budget space freed by the drop is usable again; block 11 survives.
  EXPECT_TRUE(lru.on_map_task(blk(12), false));
  EXPECT_TRUE(node_.has_dynamic_block(11));
  EXPECT_TRUE(node_.has_dynamic_block(12));
}

TEST_F(PolicyQuarantineTest, ElephantTrapRingSurvivesPointerDrop) {
  // Drop the exact block the eviction pointer rests on; the ring must stay
  // walkable and later inserts/evictions must not touch freed iterators.
  core::ElephantTrapPolicy trap(node_, 300, {1.0, 1}, rng_);
  ASSERT_TRUE(trap.on_map_task(blk(1, 1), false));
  ASSERT_TRUE(trap.on_map_task(blk(2, 2), false));
  ASSERT_TRUE(trap.on_map_task(blk(3, 3), false));
  for (BlockId dropped : {BlockId{1}, BlockId{2}, BlockId{3}}) {
    ASSERT_TRUE(node_.quarantine_replica(dropped));
    trap.on_replica_dropped(dropped);
  }
  // Ring is empty; adopting fresh blocks from scratch still works.
  EXPECT_TRUE(trap.on_map_task(blk(4, 4), false));
  EXPECT_TRUE(trap.on_map_task(blk(5, 5), false));
  EXPECT_TRUE(trap.on_map_task(blk(6, 6), false));
  // Budget full again: eviction scan walks the rebuilt ring without issue.
  EXPECT_TRUE(trap.on_map_task(blk(7, 7), false));
}

// --- end-to-end scripted corruption ---------------------------------------

/// A workload whose every job reads the same single-block file, so every
/// map task exercises the read-verify path of exactly one known block.
/// A small `spacing_s` makes the jobs a burst that overflows the replica
/// holders' map slots, guaranteeing every holder (and a remote leg) serves
/// at least one read; a large one spreads arrivals past scripted events.
workload::Workload one_block_workload(std::size_t jobs = 8,
                                      double spacing_s = 0.1) {
  workload::Workload wl;
  wl.name = "one-block";
  wl.catalog.push_back({"f0", 1});
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::JobTemplate job;
    job.arrival = from_seconds(1.0 + spacing_s * static_cast<double>(i));
    job.file_index = 0;
    job.reduces = 1;
    job.map_cpu = from_seconds(1.0);
    job.reduce_cpu = from_seconds(0.2);
    job.shuffle_bytes = 0;
    wl.jobs.push_back(job);
  }
  return wl;
}

cluster::ClusterOptions integrity_options() {
  auto opts = cluster::paper_defaults(net::cct_profile(10),
                                      cluster::SchedulerKind::kFifo,
                                      cluster::PolicyKind::kVanilla);
  opts.rereplication_interval = from_seconds(1.0);
  return opts;
}

TEST(CorruptionEndToEnd, ScriptedCorruptionDetectedQuarantinedRepaired) {
  // Placement is deterministic per seed: a dry run discovers where block 0
  // lives, then the real run corrupts one of those holders.
  const auto wl = one_block_workload();
  NodeId victim;
  {
    cluster::Cluster probe(integrity_options());
    (void)probe.run(wl);
    const auto& locs = probe.name_node().locations(0);
    ASSERT_EQ(locs.size(), 3u);
    victim = locs[0];
  }

  auto opts = integrity_options();
  opts.corruption_events.push_back({from_seconds(0.5), BlockId{0}, victim});
  cluster::Cluster cluster(opts);
  const auto result = cluster.run(wl);

  // The corrupt copy was read, detected, quarantined, and repaired.
  EXPECT_GE(result.corrupt_reads, 1u);
  EXPECT_EQ(result.corrupt_replicas, 1u);
  EXPECT_EQ(result.replicas_quarantined, 1u);
  EXPECT_EQ(result.data_loss_events, 0u);
  EXPECT_GE(result.rereplicated_blocks, 1u);
  EXPECT_GT(result.mean_repair_latency_s, 0.0);
  EXPECT_EQ(result.failed_jobs, 0u);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());

  // Replication factor restored, and the quarantined holder's copy is gone.
  EXPECT_EQ(cluster.name_node().locations(0).size(), 3u);
  EXPECT_NO_THROW(cluster.validate());
}

TEST(CorruptionEndToEnd, LastGoodReplicaIsNeverDeleted) {
  // Forced last-good-replica scenario: strike every copy of block 0 at
  // once. Detection quarantines replicas one by one, but the final copy
  // must survive — corrupt beats lost — and the damage is surfaced as
  // exactly one data-loss event.
  auto opts = integrity_options();
  opts.corruption_events.push_back(
      {from_seconds(0.5), BlockId{0}, kInvalidNode});
  cluster::Cluster cluster(opts);
  const auto wl = one_block_workload(10);
  const auto result = cluster.run(wl);

  EXPECT_EQ(result.corrupt_replicas, 3u);
  EXPECT_EQ(result.replicas_quarantined, 2u);
  EXPECT_EQ(result.data_loss_events, 1u);
  EXPECT_GE(result.corrupt_reads, 3u);
  // No clean source exists, so no repair can succeed.
  EXPECT_EQ(result.rereplicated_blocks, 0u);

  // Exactly one physical copy of block 0 survives anywhere, it is the
  // corrupt one, and the name node still advertises it.
  std::size_t copies = 0;
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    if (cluster.data_node(w).has_any_copy(0)) {
      ++copies;
      EXPECT_TRUE(cluster.data_node(w).is_corrupt(0));
    }
  }
  EXPECT_EQ(copies, 1u);
  ASSERT_EQ(cluster.name_node().locations(0).size(), 1u);

  // Every job still completes (archival-restore penalty, not deadlock).
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_EQ(result.failed_jobs, 0u);
  for (const auto& jm : result.jobs) EXPECT_GT(jm.completion, jm.arrival);
  EXPECT_NO_THROW(cluster.validate());
}

TEST(CorruptionEndToEnd, CorruptionEventForUnknownWorkerRejected) {
  auto opts = integrity_options();
  opts.corruption_events.push_back({from_seconds(0.5), BlockId{0}, NodeId{99}});
  cluster::Cluster cluster(opts);
  EXPECT_THROW((void)cluster.run(one_block_workload()), std::invalid_argument);
}

TEST(CorruptionEndToEnd, UnavailabilityWindowOpensWhenAllReplicasDie) {
  // Kill every holder of block 0 (permanently) with repair disabled: the
  // block becomes unavailable and the open window is closed into the
  // metrics at run end.
  const auto wl = one_block_workload(10, /*spacing_s=*/2.0);
  std::vector<NodeId> holders;
  {
    cluster::Cluster probe(integrity_options());
    (void)probe.run(wl);
    holders = probe.name_node().locations(0);
    ASSERT_EQ(holders.size(), 3u);
  }

  auto opts = integrity_options();
  opts.enable_rereplication = false;
  for (NodeId h : holders) {
    opts.failures.push_back({from_seconds(3.0), h,
                             faults::FaultKind::kPermanent, SimDuration{0}});
  }
  cluster::Cluster cluster(opts);
  const auto result = cluster.run(wl);

  EXPECT_GE(result.blocks_lost, 1u);
  EXPECT_GE(result.unavailability_windows, 1u);
  EXPECT_GT(result.unavailability_total_s, 0.0);
  // Jobs reading the lost block fall back to archival restore and finish.
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_EQ(result.failed_jobs, 0u);
}

// --- end-to-end stochastic corruption -------------------------------------

workload::Workload stochastic_workload() {
  workload::WorkloadOptions opts;
  opts.num_jobs = 80;
  opts.seed = 21;
  opts.catalog.small_files = 20;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 4;
  opts.catalog.large_max_blocks = 8;
  return workload::make_wl1(opts);
}

TEST(CorruptionEndToEnd, StochasticBitrotDetectsQuarantinesRepairs) {
  auto opts = cluster::paper_defaults(net::cct_profile(10),
                                      cluster::SchedulerKind::kFair,
                                      cluster::PolicyKind::kElephantTrap);
  opts.corruption.enabled = true;
  opts.corruption.bitrot_per_gb = 2.0;
  opts.rereplication_interval = from_seconds(1.0);
  opts.rereplication_batch = 32;
  cluster::Cluster cluster(opts);
  const auto wl = stochastic_workload();
  const auto result = cluster.run(wl);

  EXPECT_GT(result.corrupt_replicas, 0u);
  EXPECT_GT(result.corrupt_reads, 0u);
  EXPECT_GT(result.replicas_quarantined, 0u);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_NO_THROW(cluster.validate());
  if (result.rereplicated_blocks > 0) {
    EXPECT_GT(result.mean_repair_latency_s, 0.0);
  }
}

TEST(CorruptionEndToEnd, LatentSectorLossSurfacesOnRead) {
  // Bit rot off, latent strikes on: replicas silently rot in the
  // background and the damage is only discovered when a read verifies.
  auto opts = cluster::paper_defaults(net::cct_profile(10),
                                      cluster::SchedulerKind::kFair,
                                      cluster::PolicyKind::kElephantTrap);
  opts.corruption.enabled = true;
  opts.corruption.bitrot_per_gb = 0.0;
  opts.corruption.sector_mtbf_s = 1.0;
  opts.rereplication_interval = from_seconds(1.0);
  cluster::Cluster cluster(opts);
  const auto result = cluster.run(stochastic_workload());

  EXPECT_GT(result.corrupt_replicas, 0u);
  EXPECT_GT(result.corrupt_reads, 0u);
  EXPECT_NO_THROW(cluster.validate());
}

}  // namespace
}  // namespace dare
