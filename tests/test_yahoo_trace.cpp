#include "workload/yahoo_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

namespace dare::workload {
namespace {

YahooTraceOptions small_trace() {
  YahooTraceOptions o;
  o.files = 300;
  o.total_accesses = 30000;
  o.seed = 9;
  return o;
}

TEST(YahooTrace, GeneratesRequestedFiles) {
  const auto trace = generate_yahoo_trace(small_trace());
  EXPECT_EQ(trace.files.size(), 300u);
  EXPECT_GE(trace.events.size(), 30000u * 9 / 10);  // rounding slack
}

TEST(YahooTrace, EventsSortedByTime) {
  const auto trace = generate_yahoo_trace(small_trace());
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  }
}

TEST(YahooTrace, EventsWithinHorizonAndAfterCreation) {
  const auto trace = generate_yahoo_trace(small_trace());
  std::unordered_map<FileId, SimTime> created;
  for (const auto& f : trace.files) created[f.id] = f.created;
  for (const auto& ev : trace.events) {
    EXPECT_GE(ev.time, created[ev.file]);
    EXPECT_LE(ev.time, trace.span);
  }
}

TEST(YahooTrace, PopularityIsHeavyTailed) {
  const auto trace = generate_yahoo_trace(small_trace());
  std::unordered_map<FileId, std::size_t> counts;
  for (const auto& ev : trace.events) ++counts[ev.file];
  std::vector<std::size_t> sorted;
  for (const auto& [_, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  // Fig. 2: several decades between head and tail.
  EXPECT_GT(sorted.front(), 100u * sorted.back());
}

TEST(YahooTrace, EveryFileAccessedAtLeastOnce) {
  const auto trace = generate_yahoo_trace(small_trace());
  std::unordered_map<FileId, std::size_t> counts;
  for (const auto& ev : trace.events) ++counts[ev.file];
  EXPECT_EQ(counts.size(), trace.files.size());
}

TEST(YahooTrace, BlockCountsWithinRange) {
  auto opts = small_trace();
  opts.min_blocks = 2;
  opts.max_blocks = 10;
  const auto trace = generate_yahoo_trace(opts);
  for (const auto& f : trace.files) {
    EXPECT_GE(f.blocks, 2u);
    EXPECT_LE(f.blocks, 10u);
  }
}

TEST(YahooTrace, DeterministicForSeed) {
  const auto a = generate_yahoo_trace(small_trace());
  const auto b = generate_yahoo_trace(small_trace());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); i += 97) {
    EXPECT_EQ(a.events[i].file, b.events[i].file);
    EXPECT_EQ(a.events[i].time, b.events[i].time);
  }
}

TEST(YahooTrace, RejectsEmptyConfigurations) {
  YahooTraceOptions no_files = small_trace();
  no_files.files = 0;
  EXPECT_THROW(generate_yahoo_trace(no_files), std::invalid_argument);
  YahooTraceOptions no_accesses = small_trace();
  no_accesses.total_accesses = 0;
  EXPECT_THROW(generate_yahoo_trace(no_accesses), std::invalid_argument);
}

TEST(YahooTrace, DailyFractionZeroMakesEverythingBursty) {
  auto opts = small_trace();
  opts.daily_fraction = 0.0;
  const auto trace = generate_yahoo_trace(opts);
  // All accesses come from the bursty age CDF: ~94 % within a day of the
  // file's creation.
  std::unordered_map<FileId, SimTime> created;
  for (const auto& f : trace.files) created[f.id] = f.created;
  std::size_t within_day = 0;
  for (const auto& ev : trace.events) {
    if (ev.time - created[ev.file] <= from_seconds(24 * 3600.0)) {
      ++within_day;
    }
  }
  EXPECT_GT(static_cast<double>(within_day) /
                static_cast<double>(trace.events.size()),
            0.9);
}

}  // namespace
}  // namespace dare::workload
