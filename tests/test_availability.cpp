#include "metrics/availability.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dare::metrics {
namespace {

TEST(BlockLoss, ExactSmallCases) {
  // 1 replica, 1 failure of n nodes: P = 1/n.
  EXPECT_NEAR(block_loss_probability(10, 1, 1), 0.1, 1e-12);
  // 2 replicas cannot be lost to 1 failure.
  EXPECT_EQ(block_loss_probability(10, 2, 1), 0.0);
  // 2 replicas, 2 failures of 4 nodes: C(2,0)/C(4,2) = 1/6.
  EXPECT_NEAR(block_loss_probability(4, 2, 2), 1.0 / 6.0, 1e-12);
  // 3 replicas, 3 failures of 19 nodes: 1/C(19,3) = 1/969.
  EXPECT_NEAR(block_loss_probability(19, 3, 3), 1.0 / 969.0, 1e-12);
  // All nodes fail: certain loss.
  EXPECT_NEAR(block_loss_probability(8, 3, 8), 1.0, 1e-12);
}

TEST(BlockLoss, MoreReplicasNeverIncreaseRisk) {
  for (std::size_t r = 1; r < 6; ++r) {
    EXPECT_GE(block_loss_probability(20, r, 6),
              block_loss_probability(20, r + 1, 6));
  }
}

TEST(BlockLoss, MoreFailuresNeverDecreaseRisk) {
  for (std::size_t k = 3; k < 19; ++k) {
    EXPECT_LE(block_loss_probability(20, 3, k),
              block_loss_probability(20, 3, k + 1));
  }
}

TEST(BlockLoss, InvalidArgumentsThrow) {
  EXPECT_THROW(block_loss_probability(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(block_loss_probability(10, 11, 1), std::invalid_argument);
  EXPECT_THROW(block_loss_probability(10, 3, 11), std::invalid_argument);
}

TEST(BlockLoss, MatchesMonteCarlo) {
  // Cross-check the closed form against simulation.
  const std::size_t n = 12;
  const std::size_t r = 3;
  const std::size_t k = 5;
  Rng rng(77);
  int lost = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    // Sample k distinct failed nodes; block replicas live on nodes 0..r-1.
    std::vector<bool> failed(n, false);
    std::size_t chosen = 0;
    while (chosen < k) {
      const auto cand = static_cast<std::size_t>(rng.uniform_int(n));
      if (!failed[cand]) {
        failed[cand] = true;
        ++chosen;
      }
    }
    bool all_replicas_failed = true;
    for (std::size_t i = 0; i < r; ++i) {
      if (!failed[i]) {
        all_replicas_failed = false;
        break;
      }
    }
    if (all_replicas_failed) ++lost;
  }
  const double exact = block_loss_probability(n, r, k);
  EXPECT_NEAR(static_cast<double>(lost) / trials, exact, 0.005);
}

TEST(AvailabilityReport, AggregatesExpectedLoss) {
  // Two blocks with 1 replica, one with 2, on 4 nodes, 2 failures:
  // P(r=1) = C(3,1)/C(4,2) = 0.5; P(r=2) = 1/6.
  const auto report =
      availability_under_failures(4, {1, 1, 2}, 2);
  EXPECT_EQ(report.blocks, 3u);
  EXPECT_NEAR(report.expected_lost, 0.5 + 0.5 + 1.0 / 6.0, 1e-9);
  // Independence-style aggregate: 1 - (0.5 * 0.5 * (5/6)).
  EXPECT_NEAR(report.any_loss_probability, 1.0 - 0.25 * (5.0 / 6.0), 1e-9);
}

TEST(AvailabilityReport, ExtraReplicasShrinkLoss) {
  const std::vector<std::size_t> vanilla(100, 3);
  std::vector<std::size_t> dare(100, 3);
  for (std::size_t i = 0; i < 20; ++i) dare[i] = 8;  // popular blocks boosted
  const auto before = availability_under_failures(19, vanilla, 3);
  const auto after = availability_under_failures(19, dare, 3);
  EXPECT_LT(after.expected_lost, before.expected_lost);
  EXPECT_LT(after.any_loss_probability, before.any_loss_probability);
}

TEST(AvailabilityReport, EmptyIsSafe) {
  const auto report = availability_under_failures(10, {}, 2);
  EXPECT_EQ(report.expected_lost, 0.0);
  EXPECT_EQ(report.any_loss_probability, 0.0);
}

}  // namespace
}  // namespace dare::metrics
