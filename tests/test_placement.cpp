#include "storage/placement.h"

#include <gtest/gtest.h>

#include <set>

namespace dare::storage {
namespace {

std::vector<bool> all_alive(std::size_t n) { return std::vector<bool>(n, true); }

TEST(RandomPlacement, DistinctLiveNodes) {
  Rng rng(1);
  RandomPlacement policy(10);
  const auto alive = all_alive(10);
  for (int i = 0; i < 200; ++i) {
    const auto nodes = policy.place(3, alive, rng);
    ASSERT_EQ(nodes.size(), 3u);
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), 3u);
    for (NodeId n : nodes) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 10);
    }
  }
}

TEST(RandomPlacement, ClampsToLiveNodeCount) {
  Rng rng(2);
  RandomPlacement policy(4);
  auto alive = all_alive(4);
  alive[1] = false;
  alive[3] = false;
  const auto nodes = policy.place(3, alive, rng);
  EXPECT_EQ(nodes.size(), 2u);
  for (NodeId n : nodes) {
    EXPECT_TRUE(n == 0 || n == 2);
  }
}

TEST(RandomPlacement, SkipsDeadNodes) {
  Rng rng(3);
  RandomPlacement policy(8);
  auto alive = all_alive(8);
  alive[5] = false;
  for (int i = 0; i < 200; ++i) {
    for (NodeId n : policy.place(3, alive, rng)) {
      EXPECT_NE(n, 5);
    }
  }
}

TEST(RandomPlacement, ErrorsOnBadInput) {
  Rng rng(4);
  RandomPlacement policy(4);
  EXPECT_THROW(policy.place(3, all_alive(5), rng), std::invalid_argument);
  EXPECT_THROW(policy.place(3, std::vector<bool>(4, false), rng),
               std::logic_error);
}

TEST(RandomPlacement, ApproximatelyUniform) {
  Rng rng(5);
  RandomPlacement policy(10);
  const auto alive = all_alive(10);
  std::vector<int> counts(10, 0);
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    for (NodeId n : policy.place(3, alive, rng)) {
      ++counts[static_cast<std::size_t>(n)];
    }
  }
  const double expected = trials * 3.0 / 10.0;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

class RackAwareTest : public ::testing::Test {
 protected:
  RackAwareTest() {
    net::TopologyOptions opts;
    opts.kind = net::TopologyKind::kMultiTier;
    opts.nodes = 12;
    opts.racks = 4;
    Rng topo_rng(6);
    topo_ = std::make_unique<net::Topology>(opts, topo_rng);
  }
  std::unique_ptr<net::Topology> topo_;
};

TEST_F(RackAwareTest, SecondReplicaPrefersAnotherRack) {
  Rng rng(7);
  RackAwarePlacement policy(*topo_);
  const auto alive = all_alive(12);
  int off_rack_seconds = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const auto nodes = policy.place(3, alive, rng);
    ASSERT_EQ(nodes.size(), 3u);
    if (!topo_->same_rack(nodes[0], nodes[1])) ++off_rack_seconds;
  }
  // Unless the placement is rack-starved (it is not, with 4 racks), the
  // second replica always lands off-rack.
  EXPECT_GT(off_rack_seconds, trials * 9 / 10);
}

TEST_F(RackAwareTest, PlacementsAreDistinct) {
  Rng rng(8);
  RackAwarePlacement policy(*topo_);
  const auto alive = all_alive(12);
  for (int i = 0; i < 300; ++i) {
    const auto nodes = policy.place(4, alive, rng);
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
  }
}

TEST_F(RackAwareTest, CoversTwoRacksForAvailability) {
  Rng rng(9);
  RackAwarePlacement policy(*topo_);
  const auto alive = all_alive(12);
  for (int i = 0; i < 300; ++i) {
    const auto nodes = policy.place(3, alive, rng);
    std::set<RackId> racks;
    for (NodeId n : nodes) racks.insert(topo_->rack_of(n));
    EXPECT_GE(racks.size(), 2u);
  }
}

TEST_F(RackAwareTest, SurvivesDeadNodes) {
  Rng rng(10);
  RackAwarePlacement policy(*topo_);
  auto alive = all_alive(12);
  for (NodeId n = 0; n < 8; ++n) alive[static_cast<std::size_t>(n)] = false;
  const auto nodes = policy.place(3, alive, rng);
  EXPECT_LE(nodes.size(), 4u);
  for (NodeId n : nodes) EXPECT_GE(n, 8);
}

TEST(DefaultPlacement, PicksByTopology) {
  EXPECT_EQ(default_placement(10, nullptr)->name(), "random");

  net::TopologyOptions single;
  single.nodes = 10;
  Rng rng(11);
  net::Topology one_rack(single, rng);
  EXPECT_EQ(default_placement(10, &one_rack)->name(), "random");

  net::TopologyOptions multi;
  multi.kind = net::TopologyKind::kMultiTier;
  multi.nodes = 10;
  multi.racks = 3;
  net::Topology racks(multi, rng);
  EXPECT_EQ(default_placement(10, &racks)->name(), "rack-aware");
}

}  // namespace
}  // namespace dare::storage
