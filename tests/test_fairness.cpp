#include "metrics/fairness.h"

#include <gtest/gtest.h>

#include "cluster/experiment.h"

namespace dare::metrics {
namespace {

TEST(JainsIndex, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jains_index({2.0, 2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(jains_index({7.5}), 1.0);
}

TEST(JainsIndex, TotalStarvationIsOneOverN) {
  EXPECT_NEAR(jains_index({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainsIndex, KnownIntermediateValue) {
  // x = {1, 2, 3}: (6)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jains_index({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(JainsIndex, EdgeCases) {
  EXPECT_EQ(jains_index({}), 0.0);
  EXPECT_EQ(jains_index({0.0, 0.0}), 0.0);
}

TEST(JainsIndex, ScaleInvariant) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(x * 17.0);
  EXPECT_NEAR(jains_index(xs), jains_index(scaled), 1e-12);
}

JobMetrics jm(double slowdown) {
  JobMetrics m;
  m.arrival = 0;
  m.completion = from_seconds(slowdown);
  m.maps = 1;
  m.dedicated_runtime_s = 1.0;
  return m;
}

TEST(SlowdownFairness, ComputedOverJobSlowdowns) {
  RunResult result;
  result.jobs = {jm(1.0), jm(1.0), jm(4.0)};
  // slowdowns {1,1,4}: 36 / (3*18) = 2/3.
  EXPECT_NEAR(slowdown_fairness(result), 2.0 / 3.0, 1e-12);
}

TEST(WorstCase, RatioOfMaxToMedian) {
  RunResult result;
  result.jobs = {jm(1.0), jm(2.0), jm(8.0)};
  EXPECT_NEAR(worst_case_slowdown_ratio(result), 4.0, 1e-12);
  EXPECT_EQ(worst_case_slowdown_ratio(RunResult{}), 0.0);
}

TEST(SchedulerFairness, FairBeatsFifoOnWl2) {
  // The reason wl2 exists: FIFO lets large scans starve small jobs.
  const auto wl = cluster::standard_wl2(16, 200, 9);
  const auto fifo = cluster::run_once(
      cluster::paper_defaults(net::cct_profile(16),
                              cluster::SchedulerKind::kFifo,
                              cluster::PolicyKind::kVanilla),
      wl);
  const auto fair = cluster::run_once(
      cluster::paper_defaults(net::cct_profile(16),
                              cluster::SchedulerKind::kFair,
                              cluster::PolicyKind::kVanilla),
      wl);
  EXPECT_GT(slowdown_fairness(fair), slowdown_fairness(fifo));
}

}  // namespace
}  // namespace dare::metrics
