#include "net/network.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "net/profile.h"

namespace dare::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  Rng rng_{11};
};

TEST_F(NetworkTest, RttPositiveAndReasonableOnCct) {
  const auto profile = cct_profile(20);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  OnlineStats st;
  for (int i = 0; i < 5000; ++i) st.add(net.sample_rtt_ms(0, 1));
  EXPECT_GT(st.min(), 0.0);
  EXPECT_NEAR(st.mean(), 0.18, 0.12);  // Table I: mean 0.18 ms
  EXPECT_LT(st.max(), 5.0);            // Table I: max 2.17 ms
}

TEST_F(NetworkTest, Ec2RttHasHeavyTail) {
  const auto profile = ec2_profile(20);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  OnlineStats st;
  for (int i = 0; i < 20000; ++i) {
    st.add(net.sample_rtt_ms(0, static_cast<NodeId>(1 + i % 19)));
  }
  EXPECT_NEAR(st.mean(), 0.77, 0.5);  // Table I: mean 0.77 ms
  EXPECT_GT(st.max(), 5.0);           // spikes occur
  EXPECT_GT(st.stddev(), st.mean());  // dispersion dominates the mean
}

TEST_F(NetworkTest, BandwidthWithinProfileClamps) {
  const auto profile = ec2_profile(20);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  for (int i = 0; i < 5000; ++i) {
    const double mbps =
        net.sample_path_bandwidth(0, 1) / static_cast<double>(kMiB);
    EXPECT_GE(mbps, profile.bandwidth.floor * 0.89);  // cross-pod penalty
    EXPECT_LE(mbps, profile.bandwidth.ceiling);
  }
}

TEST_F(NetworkTest, CctBandwidthTightAroundGigabit) {
  const auto profile = cct_profile(20);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  OnlineStats st;
  for (int i = 0; i < 5000; ++i) {
    st.add(net.sample_path_bandwidth(0, 1) / static_cast<double>(kMiB));
  }
  EXPECT_NEAR(st.mean(), 117.7, 1.5);  // Table II
  EXPECT_LT(st.stddev(), 2.0);
}

TEST_F(NetworkTest, FlowAccountingBalances) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  net.flow_started(0, 1);
  net.flow_started(0, 2);
  EXPECT_EQ(net.active_flows(0), 2);
  EXPECT_EQ(net.active_flows(1), 1);
  EXPECT_EQ(net.active_flows(2), 1);
  net.flow_finished(0, 1);
  EXPECT_EQ(net.active_flows(0), 1);
  net.flow_finished(0, 2);
  EXPECT_EQ(net.active_flows(0), 0);
}

TEST_F(NetworkTest, UnbalancedFlowFinishThrows) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  EXPECT_THROW(net.flow_finished(0, 1), std::logic_error);
}

TEST_F(NetworkTest, ContentionSlowsTransfers) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  OnlineStats uncontended;
  OnlineStats contended;
  for (int i = 0; i < 300; ++i) {
    uncontended.add(
        to_seconds(net.transfer_duration(0, 1, 128 * kMiB)));
  }
  net.flow_started(2, 1);
  net.flow_started(3, 1);
  net.flow_started(4, 1);
  for (int i = 0; i < 300; ++i) {
    contended.add(to_seconds(net.transfer_duration(0, 1, 128 * kMiB)));
  }
  // Four flows share the destination NIC -> about 4x slower.
  EXPECT_GT(contended.mean(), uncontended.mean() * 3.0);
}

TEST_F(NetworkTest, LocalTransferIsFree) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  EXPECT_EQ(net.transfer_duration(3, 3, kGiB), 0);
}

TEST_F(NetworkTest, TransferScalesWithBytes) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 200; ++i) {
    small.add(to_seconds(net.transfer_duration(0, 1, 64 * kMiB)));
    large.add(to_seconds(net.transfer_duration(0, 1, 256 * kMiB)));
  }
  EXPECT_NEAR(large.mean() / small.mean(), 4.0, 0.5);
}

TEST_F(NetworkTest, NegativeBytesRejected) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  EXPECT_THROW(net.transfer_duration(0, 1, -1), std::invalid_argument);
}

TEST_F(NetworkTest, UplinkAccountingTracksCrossRackFlows) {
  const auto profile = ec2_profile(20);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  // Find a cross-rack pair and a same-rack pair (if any).
  NodeId a = 0;
  NodeId b = 1;
  while (topo.same_rack(a, b)) ++b;
  net.flow_started(a, b);
  EXPECT_EQ(net.active_uplink_flows(topo.rack_of(a)), 1);
  EXPECT_EQ(net.active_uplink_flows(topo.rack_of(b)), 1);
  net.flow_finished(a, b);
  EXPECT_EQ(net.active_uplink_flows(topo.rack_of(a)), 0);
  EXPECT_EQ(net.active_uplink_flows(topo.rack_of(b)), 0);
}

TEST_F(NetworkTest, SameRackFlowsDoNotTouchUplink) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  net.flow_started(0, 1);
  EXPECT_EQ(net.active_uplink_flows(0), 0);
  net.flow_finished(0, 1);
}

TEST_F(NetworkTest, OversubscribedUplinkSlowsCrossRackTransfers) {
  auto profile = ec2_profile(24);
  profile.bandwidth.rack_uplink_mbps = 100.0;  // tight uplink
  // Remove per-pair noise so only the uplink effect remains.
  profile.bandwidth.stddev = 0.0;
  profile.bandwidth.degraded_probability = 0.0;
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  NodeId a = 0;
  NodeId b = 1;
  while (topo.same_rack(a, b)) ++b;
  OnlineStats before;
  for (int i = 0; i < 100; ++i) {
    before.add(to_seconds(net.transfer_duration(a, b, 128 * kMiB)));
  }
  // Saturate rack a's uplink with other cross-rack flows.
  int added = 0;
  for (NodeId other = 0; other < 24 && added < 3; ++other) {
    if (other != a && other != b && topo.same_rack(other, a)) {
      for (NodeId far = 0; far < 24; ++far) {
        if (!topo.same_rack(other, far)) {
          net.flow_started(other, far);
          ++added;
          break;
        }
      }
    }
  }
  if (added == 0) {
    // The random placement isolated node a in its rack: saturate via flows
    // from a itself.
    net.flow_started(a, b);
    added = 1;
  }
  OnlineStats after;
  for (int i = 0; i < 100; ++i) {
    after.add(to_seconds(net.transfer_duration(a, b, 128 * kMiB)));
  }
  EXPECT_GT(after.mean(), before.mean() * 1.3);
}

TEST_F(NetworkTest, CctTransferRoughly128MiBPerSecond) {
  const auto profile = cct_profile(10);
  Topology topo(profile.topology, rng_);
  Network net(profile, topo, rng_);
  OnlineStats st;
  for (int i = 0; i < 200; ++i) {
    st.add(to_seconds(net.transfer_duration(0, 1, 128 * kMiB)));
  }
  // 128 MiB at ~117.7 MB/s ~= 1.09 s.
  EXPECT_NEAR(st.mean(), 1.09, 0.15);
}

}  // namespace
}  // namespace dare::net
