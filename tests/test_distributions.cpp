#include "common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace dare {
namespace {

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfIsDecreasingInRank) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_GT(zipf.pmf(k - 1), zipf.pmf(k));
  }
}

TEST(Zipf, PmfMatchesPowerLaw) {
  const double s = 1.5;
  ZipfDistribution zipf(1000, s);
  // pmf(k) / pmf(0) should equal (k+1)^-s.
  for (std::size_t k : {1u, 9u, 99u}) {
    const double ratio = zipf.pmf(k) / zipf.pmf(0);
    EXPECT_NEAR(ratio, std::pow(static_cast<double>(k + 1), -s), 1e-9);
  }
}

TEST(Zipf, SamplingFrequenciesMatchPmf) {
  ZipfDistribution zipf(20, 1.2);
  Rng rng(1);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    const double freq = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(freq, zipf.pmf(k), 0.01);
  }
}

TEST(Zipf, RejectsEmpty) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Zipf, OutOfRangePmfIsZero) {
  ZipfDistribution zipf(5, 1.0);
  EXPECT_EQ(zipf.pmf(5), 0.0);
  EXPECT_EQ(zipf.pmf(100), 0.0);
}

TEST(BoundedPareto, SamplesStayInBounds) {
  BoundedPareto pareto(1.0, 100.0, 1.3);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = pareto.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, HeavyTailShape) {
  // With alpha ~1, the median is near lo but the mean is pulled far above
  // it — the signature of a heavy tail.
  BoundedPareto pareto(1.0, 1000.0, 1.0);
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(pareto.sample(rng));
  std::sort(xs.begin(), xs.end());
  const double median = xs[xs.size() / 2];
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  EXPECT_LT(median, 3.0);
  EXPECT_GT(mean, 3.0 * median);
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(10.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 10.0, 0.0), std::invalid_argument);
}

TEST(Lognormal, MeanMatchesClosedForm) {
  Lognormal ln(0.5, 0.75);
  Rng rng(4);
  const int n = 300000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += ln.sample(rng);
  EXPECT_NEAR(sum / n, ln.mean(), ln.mean() * 0.02);
}

TEST(Lognormal, AllSamplesPositive) {
  Lognormal ln(-2.0, 1.5);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(ln.sample(rng), 0.0);
  }
}

TEST(Discrete, PmfAndCdfConsistent) {
  DiscreteDistribution d({1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(d.pmf(0), 0.1, 1e-12);
  EXPECT_NEAR(d.pmf(3), 0.4, 1e-12);
  EXPECT_NEAR(d.cdf(1), 0.3, 1e-12);
  EXPECT_NEAR(d.cdf(3), 1.0, 1e-12);
  EXPECT_NEAR(d.cdf(100), 1.0, 1e-12);  // clamped
}

TEST(Discrete, ZeroWeightEntriesNeverSampled) {
  DiscreteDistribution d({0.0, 1.0, 0.0});
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(d.sample(rng), 1u);
  }
}

TEST(Discrete, SamplingMatchesWeights) {
  DiscreteDistribution d({3.0, 1.0});
  Rng rng(7);
  int zeros = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.75, 0.01);
}

TEST(Discrete, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
}

TEST(PiecewiseCdf, QuantileInterpolatesLinearly) {
  PiecewiseCdf cdf({{0.0, 0.0}, {10.0, 0.5}, {20.0, 1.0}});
  EXPECT_NEAR(cdf.quantile(0.0), 0.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(0.25), 5.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(0.5), 10.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(0.75), 15.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(1.0), 20.0, 1e-12);
}

TEST(PiecewiseCdf, QuantileClampsInput) {
  PiecewiseCdf cdf({{1.0, 0.0}, {2.0, 1.0}});
  EXPECT_NEAR(cdf.quantile(-0.5), 1.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(1.5), 2.0, 1e-12);
}

TEST(PiecewiseCdf, SampleDistributionMatchesKnots) {
  PiecewiseCdf cdf({{0.0, 0.0}, {1.0, 0.8}, {10.0, 1.0}});
  Rng rng(8);
  int below_one = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (cdf.sample(rng) <= 1.0) ++below_one;
  }
  EXPECT_NEAR(static_cast<double>(below_one) / n, 0.8, 0.01);
}

TEST(PiecewiseCdf, RejectsMalformedKnots) {
  using K = PiecewiseCdf::Knot;
  EXPECT_THROW(PiecewiseCdf({K{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseCdf({K{0.0, 0.1}, K{1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseCdf({K{0.0, 0.0}, K{1.0, 0.5}}),
               std::invalid_argument);
  // Non-increasing value.
  EXPECT_THROW(PiecewiseCdf({K{0.0, 0.0}, K{-1.0, 1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dare
