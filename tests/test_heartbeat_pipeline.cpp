// Tests for the DNA_DYNREPL metadata pipeline: a dynamic replica exists on
// the data node the moment the policy captures it, but only becomes visible
// to the name node — and hence to the scheduler — at the node's next
// heartbeat; evictions propagate the same way.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "net/profile.h"
#include "sim/simulation.h"
#include "storage/datanode.h"
#include "storage/namenode.h"

namespace dare::storage {
namespace {

class HeartbeatPipelineTest : public ::testing::Test {
 protected:
  HeartbeatPipelineTest()
      : nn_(4, nullptr, rng_), dn_(3, net::cct_profile().disk, rng_) {}

  /// One heartbeat cycle: drain the report into the name node, reclaim.
  void heartbeat() {
    const auto report = dn_.drain_report();
    if (!report.added.empty()) {
      nn_.report_dynamic_added(dn_.id(), report.added);
    }
    if (!report.removed.empty()) {
      nn_.report_dynamic_removed(dn_.id(), report.removed);
    }
    dn_.reclaim_marked();
  }

  bool visible_at_namenode(BlockId block) {
    const auto& locs = nn_.locations(block);
    return std::find(locs.begin(), locs.end(), dn_.id()) != locs.end();
  }

  Rng rng_{71};
  NameNode nn_;
  DataNode dn_;
};

TEST_F(HeartbeatPipelineTest, ReplicaInvisibleUntilHeartbeat) {
  // Create files until the static placement avoids our data node (node 3);
  // with replication 2 of 4 nodes a few tries always suffice.
  BlockId b = kInvalidBlock;
  for (int attempt = 0; attempt < 16 && b == kInvalidBlock; ++attempt) {
    const FileId f = nn_.create_file("a" + std::to_string(attempt), 1, kMiB,
                                     2, 0);
    const BlockId candidate = nn_.file(f).blocks[0];
    if (!visible_at_namenode(candidate)) b = candidate;
  }
  ASSERT_NE(b, kInvalidBlock);

  dn_.insert_dynamic(nn_.block(b));
  EXPECT_TRUE(dn_.has_visible_block(b));
  EXPECT_FALSE(visible_at_namenode(b)) << "schedulable before heartbeat";
  heartbeat();
  EXPECT_TRUE(visible_at_namenode(b));
}

TEST_F(HeartbeatPipelineTest, EvictionInvisibleUntilHeartbeat) {
  const FileId f = nn_.create_file("a", 1, kMiB, 1, 0);
  const BlockId b = nn_.file(f).blocks[0];
  if (visible_at_namenode(b)) GTEST_SKIP();
  dn_.insert_dynamic(nn_.block(b));
  heartbeat();
  ASSERT_TRUE(visible_at_namenode(b));

  dn_.mark_for_deletion(b);
  // The name node still believes the replica exists (stale metadata window).
  EXPECT_TRUE(visible_at_namenode(b));
  EXPECT_FALSE(dn_.has_visible_block(b));
  heartbeat();
  EXPECT_FALSE(visible_at_namenode(b));
}

TEST_F(HeartbeatPipelineTest, InsertEvictWithinOneIntervalIsInvisible) {
  const FileId f = nn_.create_file("a", 1, kMiB, 1, 0);
  const BlockId b = nn_.file(f).blocks[0];
  if (visible_at_namenode(b)) GTEST_SKIP();
  dn_.insert_dynamic(nn_.block(b));
  dn_.mark_for_deletion(b);
  heartbeat();
  // The add and remove cancelled out: the name node never learned of it.
  EXPECT_FALSE(visible_at_namenode(b));
  EXPECT_EQ(nn_.dynamic_replica_count(), 0u);
}

TEST_F(HeartbeatPipelineTest, ReplicaCountsSurviveManyCycles) {
  const FileId f = nn_.create_file("a", 6, kMiB, 1, 0);
  const auto& blocks = nn_.file(f).blocks;
  std::size_t expected_dynamic = 0;
  for (std::size_t cycle = 0; cycle < 6; ++cycle) {
    const BlockId b = blocks[cycle];
    if (!visible_at_namenode(b) && dn_.insert_dynamic(nn_.block(b))) {
      ++expected_dynamic;
    }
    if (cycle % 2 == 1) {
      // Evict the block added two cycles ago (if still live).
      const BlockId victim = blocks[cycle - 1];
      if (dn_.has_dynamic_block(victim)) {
        dn_.mark_for_deletion(victim);
        --expected_dynamic;
      }
    }
    heartbeat();
    EXPECT_EQ(nn_.dynamic_replica_count(), expected_dynamic)
        << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace dare::storage
