// The repo's determinism guarantee, enforced: running the same seeded
// configuration twice must produce bit-identical metrics. Every field of
// the RunResult (including the bit patterns of all doubles) is folded into
// a 64-bit digest and compared across independent Cluster instances.
//
// If this test fails, some component consumed nondeterministic state —
// unordered-container iteration order, wall-clock time, un-forked RNG
// streams — and Figs. 7–11 are no longer reproducible. tools/dare_lint
// statically bans the usual suspects; this is the end-to-end check.
#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "metrics/run_metrics.h"

namespace dare::cluster {
namespace {

constexpr std::size_t kNodes = 10;
constexpr std::size_t kJobs = 60;

std::uint64_t digest_of(const ClusterOptions& options,
                        const workload::Workload& wl) {
  return metrics::fingerprint(run_once(options, wl));
}

void expect_twice_identical(const ClusterOptions& options) {
  const auto wl = standard_wl1(kNodes, kJobs);
  const auto first = digest_of(options, wl);
  const auto second = digest_of(options, wl);
  EXPECT_EQ(first, second) << "same seed, same config, different metrics";
}

TEST(Determinism, VanillaFifo) {
  expect_twice_identical(paper_defaults(net::cct_profile(kNodes),
                                        SchedulerKind::kFifo,
                                        PolicyKind::kVanilla));
}

TEST(Determinism, GreedyLruFifo) {
  expect_twice_identical(paper_defaults(net::cct_profile(kNodes),
                                        SchedulerKind::kFifo,
                                        PolicyKind::kGreedyLru));
}

TEST(Determinism, ElephantTrapFair) {
  expect_twice_identical(paper_defaults(net::cct_profile(kNodes),
                                        SchedulerKind::kFair,
                                        PolicyKind::kElephantTrap));
}

TEST(Determinism, WithFailuresAndSpeculation) {
  auto options = paper_defaults(net::cct_profile(kNodes),
                                SchedulerKind::kFair,
                                PolicyKind::kElephantTrap);
  options.failures.push_back({from_seconds(30.0), 2});
  options.failures.push_back({from_seconds(90.0), 5});
  options.enable_speculation = true;
  expect_twice_identical(options);
}

TEST(Determinism, ChurnEnabled) {
  // Stochastic node churn (transient + permanent + rack-correlated
  // failures, injected task failures) must be exactly as reproducible as a
  // quiet run: all fault randomness lives in one forked stream.
  auto options = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kGreedyLru);
  options.faults.enabled = true;
  options.faults.mtbf_s = 80.0;
  options.faults.mttr_s = 20.0;
  options.faults.permanent_fraction = 0.2;
  options.faults.rack_correlation = 0.2;
  options.faults.task_failure_prob = 0.01;
  options.faults.min_live_workers = 4;
  options.rereplication_interval = from_seconds(2.0);
  expect_twice_identical(options);
}

TEST(Determinism, CorruptionEnabled) {
  // Silent corruption (per-read bit rot + latent sector loss) on top of
  // churn must stay bit-reproducible: the corruption process draws from
  // its own forked stream, and detection/quarantine/repair all run in
  // deterministic event order.
  auto options = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kElephantTrap);
  options.faults.enabled = true;
  options.faults.mtbf_s = 80.0;
  options.faults.mttr_s = 20.0;
  options.faults.permanent_fraction = 0.2;
  options.faults.min_live_workers = 4;
  options.corruption.enabled = true;
  options.corruption.bitrot_per_gb = 1.0;
  options.corruption.sector_mtbf_s = 30.0;
  options.rereplication_interval = from_seconds(2.0);
  expect_twice_identical(options);
}

TEST(Determinism, StragglersEnabled) {
  // The straggler subsystem (degraded-node chains, heavy-tailed task
  // inflation) plus its full mitigation stack (progress-rate detection,
  // budgeted cloning, speculation) must be exactly as reproducible as a
  // quiet run: all straggler randomness lives in one forked stream and
  // every detection/cloning decision is driven by deterministic state.
  auto options = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kElephantTrap);
  options.stragglers.enabled = true;
  options.stragglers.degrade_mtbf_s = 60.0;
  options.stragglers.degrade_duration_s = 30.0;
  options.stragglers.rack_correlation = 0.2;
  options.stragglers.tail_prob = 0.1;
  options.stragglers.tail_cap = 8.0;
  options.enable_straggler_detection = true;
  options.straggler_detect_min_samples = 2;
  options.enable_task_cloning = true;
  options.clone_budget_fraction = 0.15;
  options.enable_speculation = true;
  expect_twice_identical(options);
}

TEST(Determinism, NetworkFaultsEnabled) {
  // The network-fault subsystem (rack partitions, degraded uplinks) plus
  // churn and the prioritized repair scheduler must be exactly as
  // reproducible as a quiet run: all netfault randomness lives in one
  // forked stream, repair ordering is (class, enqueue time, block), and
  // every reachability / backoff / admission decision is driven by
  // deterministic state. ec2 profile: multi-rack, so partitions actually
  // fire.
  auto options = paper_defaults(net::ec2_profile(kNodes), SchedulerKind::kFair,
                                PolicyKind::kElephantTrap);
  options.faults.enabled = true;
  options.faults.mtbf_s = 80.0;
  options.faults.mttr_s = 20.0;
  options.faults.permanent_fraction = 0.2;
  options.faults.min_live_workers = 4;
  options.netfault.enabled = true;
  options.netfault.partition_mtbf_s = 90.0;
  options.netfault.partition_duration_s = 15.0;
  options.netfault.link_degrade_mtbf_s = 50.0;
  options.netfault.link_degrade_duration_s = 25.0;
  options.rereplication_interval = from_seconds(2.0);
  expect_twice_identical(options);
}

TEST(Determinism, DifferentSeedsDiffer) {
  // Sanity that the digest has discriminating power: a different seed must
  // perturb at least one metric bit. (Astronomically unlikely to collide.)
  const auto wl = standard_wl1(kNodes, kJobs);
  auto a = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFifo,
                          PolicyKind::kElephantTrap, /*seed=*/1);
  auto b = paper_defaults(net::cct_profile(kNodes), SchedulerKind::kFifo,
                          PolicyKind::kElephantTrap, /*seed=*/2);
  EXPECT_NE(digest_of(a, wl), digest_of(b, wl));
}

TEST(Determinism, FingerprintIsStableForEmptyResult) {
  // Pin the digest algorithm itself: changing field order or hash constants
  // silently invalidates recorded digests, so make that loud.
  metrics::RunResult empty;
  EXPECT_EQ(metrics::fingerprint(empty), metrics::fingerprint(empty));
  EXPECT_NE(metrics::fingerprint(empty), 0u);
}

}  // namespace
}  // namespace dare::cluster
