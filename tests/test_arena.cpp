// SlabPool / SlabAllocator unit tests: the arena must recycle freed nodes
// (steady-state container churn performs zero heap allocations) and fall
// back to the heap for blocks it does not pool. The end-to-end effect —
// streamed runs whose residency stays O(active jobs) — is pinned in
// test_hyperscale.cpp; this file pins the allocator mechanics those runs
// rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/arena.h"

namespace dare::common {
namespace {

TEST(SlabPool, AllocateDeallocateTracksLiveBlocks) {
  SlabPool pool;
  EXPECT_EQ(pool.live_blocks(), 0u);
  void* a = pool.allocate(24, alignof(std::max_align_t));
  void* b = pool.allocate(24, alignof(std::max_align_t));
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live_blocks(), 2u);
  pool.deallocate(a, 24);
  EXPECT_EQ(pool.live_blocks(), 1u);
  pool.deallocate(b, 24);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(SlabPool, FreedBlocksAreReused) {
  SlabPool pool;
  void* a = pool.allocate(48, alignof(std::max_align_t));
  pool.deallocate(a, 48);
  // Same size class: the freelist must hand the block straight back.
  void* b = pool.allocate(48, alignof(std::max_align_t));
  EXPECT_EQ(a, b);
  pool.deallocate(b, 48);
}

TEST(SlabPool, SteadyStateChurnAllocatesNoNewChunks) {
  SlabPool pool;
  // Fill one chunk's worth, release, and churn: the chunk count must stay
  // where the first wave left it — this is the "steady-state container
  // churn performs zero heap allocations" guarantee.
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) {
    blocks.push_back(pool.allocate(64, alignof(std::max_align_t)));
  }
  const std::size_t chunks_after_first_wave = pool.chunk_count();
  const std::size_t bytes_after_first_wave = pool.chunk_bytes();
  for (int round = 0; round < 100; ++round) {
    for (void* p : blocks) pool.deallocate(p, 64);
    blocks.clear();
    for (int i = 0; i < 64; ++i) {
      blocks.push_back(pool.allocate(64, alignof(std::max_align_t)));
    }
  }
  EXPECT_EQ(pool.chunk_count(), chunks_after_first_wave);
  EXPECT_EQ(pool.chunk_bytes(), bytes_after_first_wave);
  for (void* p : blocks) pool.deallocate(p, 64);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(SlabPool, DistinctSizeClassesDoNotShareFreelists) {
  SlabPool pool;
  void* small = pool.allocate(16, alignof(std::max_align_t));
  pool.deallocate(small, 16);
  // A different size class must not be served from the 16-byte freelist.
  void* big = pool.allocate(256, alignof(std::max_align_t));
  EXPECT_NE(small, big);
  pool.deallocate(big, 256);
}

TEST(SlabPool, OversizedBlocksBypassTheSlabs) {
  SlabPool pool;
  const std::size_t huge = SlabPool::kMaxPooledBytes + 1;
  void* p = pool.allocate(huge, alignof(std::max_align_t));
  ASSERT_NE(p, nullptr);
  // Heap fallback: neither the live counter nor the chunk list sees it.
  EXPECT_EQ(pool.live_blocks(), 0u);
  EXPECT_EQ(pool.chunk_count(), 0u);
  pool.deallocate(p, huge);
}

TEST(SlabAllocator, RebindsShareThePool) {
  SlabAllocator<int> a;
  SlabAllocator<long long> b(a);  // rebind copy, as containers make
  EXPECT_TRUE(a == b);
  SlabAllocator<int> other;  // fresh default construction = fresh pool
  EXPECT_TRUE(a != other);
}

TEST(SlabAllocator, NodeContainerChurnReusesChunks) {
  using Alloc = SlabAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
  std::unordered_map<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                     std::equal_to<std::uint64_t>, Alloc>
      map;
  for (std::uint64_t i = 0; i < 1000; ++i) map.emplace(i, i * 3);
  const auto& pool = *map.get_allocator().pool();
  const std::size_t chunks_at_peak = pool.chunk_count();
  EXPECT_GT(chunks_at_peak, 0u);
  // erase + refill cycles must be served entirely from the freelist.
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 1000; ++i) map.erase(i);
    for (std::uint64_t i = 0; i < 1000; ++i) map.emplace(i, i * 7);
  }
  EXPECT_EQ(pool.chunk_count(), chunks_at_peak);
  EXPECT_EQ(map.size(), 1000u);
}

TEST(SlabAllocator, TreeContainerChurnReusesChunks) {
  std::set<std::uint64_t, std::less<std::uint64_t>,
           SlabAllocator<std::uint64_t>>
      set;
  for (std::uint64_t i = 0; i < 500; ++i) set.insert(i);
  const auto& pool = *set.get_allocator().pool();
  const std::size_t chunks_at_peak = pool.chunk_count();
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 500; ++i) set.erase(i);
    for (std::uint64_t i = 0; i < 500; ++i) set.insert(i);
  }
  EXPECT_EQ(pool.chunk_count(), chunks_at_peak);
}

}  // namespace
}  // namespace dare::common
