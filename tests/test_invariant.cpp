// Tests for the DARE_INVARIANT runtime auditing layer.
//
// In invariant-enabled builds (Debug, DARE_SANITIZE presets, or
// -DDARE_INVARIANTS=ON) a throwing handler is installed and genuine
// contract violations are provoked through the public APIs. In release
// builds the macro must compile to nothing — the same violations run
// without side effects.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/invariant.h"
#include "common/rng.h"
#include "net/profile.h"
#include "storage/datanode.h"

namespace dare {
namespace {

[[noreturn]] void throwing_handler(const InvariantViolation& violation) {
  throw std::logic_error(std::string(violation.condition) + ": " +
                         violation.message);
}

class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override { set_invariant_handler(&throwing_handler); }
  void TearDown() override { set_invariant_handler(nullptr); }
};

storage::DataNode make_node(Rng& rng) {
  return storage::DataNode(0, net::cct_profile(2).disk, rng);
}

TEST_F(InvariantTest, HandlerInstallReturnsPrevious) {
  // SetUp installed throwing_handler; installing again returns it.
  EXPECT_EQ(set_invariant_handler(&throwing_handler), &throwing_handler);
  // Restoring the default reports "no custom handler" as nullptr.
  set_invariant_handler(nullptr);
  EXPECT_EQ(set_invariant_handler(&throwing_handler), nullptr);
}

TEST_F(InvariantTest, BudgetAuditFiresOnOvershoot) {
  Rng rng(7);
  auto node = make_node(rng);
  node.set_audited_budget(100);
  const storage::BlockMeta small{1, 10, 60};
  const storage::BlockMeta big{2, 11, 90};
  EXPECT_TRUE(node.insert_dynamic(small));  // 60 <= 100: fine
#if DARE_INVARIANTS_ENABLED
  // A (hypothetically buggy) policy inserting without making room trips the
  // audit: 60 + 90 > 100.
  EXPECT_THROW(node.insert_dynamic(big), std::logic_error);
#else
  EXPECT_TRUE(node.insert_dynamic(big));  // compiled out: no enforcement
#endif
}

TEST_F(InvariantTest, BudgetAuditQuietWhenUnset) {
  Rng rng(7);
  auto node = make_node(rng);  // no set_audited_budget call
  const storage::BlockMeta a{1, 10, 1000};
  const storage::BlockMeta b{2, 11, 2000};
  EXPECT_TRUE(node.insert_dynamic(a));
  EXPECT_TRUE(node.insert_dynamic(b));
  EXPECT_EQ(node.dynamic_bytes(), 3000);
}

TEST_F(InvariantTest, DuplicateReplicaIsRejectedNotTrapped) {
  // Duplicate inserts are a legitimate runtime occurrence (policy raced a
  // pending replica): the API contract is `return false`, not an invariant
  // abort.
  Rng rng(7);
  auto node = make_node(rng);
  const storage::BlockMeta block{1, 10, 50};
  EXPECT_TRUE(node.insert_dynamic(block));
  EXPECT_FALSE(node.insert_dynamic(block));
  node.mark_for_deletion(block.id);
  EXPECT_FALSE(node.insert_dynamic(block));  // still physically present
}

TEST(InvariantMacro, ConditionNotEvaluatedWhenDisabled) {
#if !DARE_INVARIANTS_ENABLED
  int evaluations = 0;
  DARE_INVARIANT((++evaluations, true), "never evaluated in release");
  EXPECT_EQ(evaluations, 0);
#else
  GTEST_SKIP() << "invariants enabled in this build";
#endif
}

TEST(InvariantMacro, PassingConditionIsSilent) {
  DARE_INVARIANT(1 + 1 == 2, "arithmetic holds");
}

}  // namespace
}  // namespace dare
