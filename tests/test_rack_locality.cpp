// Rack-locality tests on the EC2 (multi-rack) profile: the three-tier
// locality accounting, two-level delay scheduling, and the Fig.-1-style
// topology's effect on scheduling.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

workload::Workload ec2_workload(std::size_t jobs = 120,
                                std::uint64_t seed = 31) {
  workload::WorkloadOptions opts;
  opts.num_jobs = jobs;
  opts.seed = seed;
  opts.catalog.small_files = 30;
  opts.catalog.large_files = 3;
  opts.catalog.large_min_blocks = 8;
  opts.catalog.large_max_blocks = 12;
  return workload::make_wl1(opts);
}

TEST(RackLocality, RackLocalityDominatesNodeLocality) {
  for (const auto sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
    const auto result = run_once(
        paper_defaults(net::ec2_profile(16), sched, PolicyKind::kVanilla),
        ec2_workload());
    EXPECT_GE(result.rack_locality, result.locality);
    EXPECT_LE(result.rack_locality, 1.0);
  }
}

TEST(RackLocality, SingleRackClusterIsAllRackLocal) {
  const auto result = run_once(
      paper_defaults(net::cct_profile(12), SchedulerKind::kFifo,
                     PolicyKind::kVanilla),
      ec2_workload());
  // Every replica is in the (single) rack of every node.
  EXPECT_DOUBLE_EQ(result.rack_locality, 1.0);
}

TEST(RackLocality, TierCountsArePartitioned) {
  Cluster cluster(paper_defaults(net::ec2_profile(16), SchedulerKind::kFair,
                                 PolicyKind::kElephantTrap));
  const auto wl = ec2_workload();
  const auto result = cluster.run(wl);
  for (const auto& jm : result.jobs) {
    EXPECT_LE(jm.local_maps + jm.rack_local_maps, jm.maps);
  }
}

TEST(RackLocality, FairSchedulerRackDelayTradesTiers) {
  // With a long rack-level delay, off-rack launches become rare.
  const auto wl = ec2_workload(150);
  auto eager = paper_defaults(net::ec2_profile(16), SchedulerKind::kFair,
                              PolicyKind::kVanilla);
  eager.fair_delay = from_millis(100);
  auto patient = eager;
  patient.fair_delay = from_seconds(3.0);
  const auto r_eager = run_once(eager, wl);
  const auto r_patient = run_once(patient, wl);
  // Patience buys locality (node or rack) at both tiers.
  EXPECT_GE(r_patient.rack_locality, r_eager.rack_locality - 0.02);
  EXPECT_GE(r_patient.locality, r_eager.locality);
}

TEST(RackLocality, DareImprovesBothTiersOnEc2) {
  const auto wl = ec2_workload(150);
  const auto vanilla = run_once(
      paper_defaults(net::ec2_profile(16), SchedulerKind::kFifo,
                     PolicyKind::kVanilla),
      wl);
  const auto dare = run_once(
      paper_defaults(net::ec2_profile(16), SchedulerKind::kFifo,
                     PolicyKind::kGreedyLru),
      wl);
  EXPECT_GT(dare.locality, vanilla.locality);
  EXPECT_GE(dare.rack_locality, vanilla.rack_locality - 0.02);
}

}  // namespace
}  // namespace dare::cluster
