#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

namespace dare {
namespace {

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.min(), 0.0);
  EXPECT_EQ(st.max(), 0.0);
  EXPECT_EQ(st.cv(), 0.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(OnlineStats, SingleValueHasZeroVariance) {
  OnlineStats st;
  st.add(42.0);
  EXPECT_EQ(st.variance(), 0.0);
  EXPECT_EQ(st.min(), 42.0);
  EXPECT_EQ(st.max(), 42.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(GeometricMean, MatchesHandComputation) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(GeometricMean, SkipsNonPositive) {
  EXPECT_NEAR(geometric_mean({0.0, -5.0, 4.0, 4.0}), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
  EXPECT_EQ(geometric_mean({0.0}), 0.0);
}

TEST(GeometricMean, ReportsSkippedCount) {
  std::size_t skipped = 99;
  EXPECT_NEAR(geometric_mean({0.0, -5.0, 4.0, 4.0}, &skipped), 4.0, 1e-12);
  EXPECT_EQ(skipped, 2u);
  geometric_mean({1.0, 2.0}, &skipped);
  EXPECT_EQ(skipped, 0u);
  geometric_mean({}, &skipped);
  EXPECT_EQ(skipped, 0u);
}

TEST(GeometricMean, ZeroIsOnTheSkippedSideOfTheBoundary) {
  // Exactly 0 cannot enter the log-domain mean; the smallest positive
  // double can. The skip counter must agree with the value handling.
  std::size_t skipped = 99;
  EXPECT_EQ(geometric_mean({0.0}, &skipped), 0.0);
  EXPECT_EQ(skipped, 1u);
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_GT(geometric_mean({tiny}, &skipped), 0.0);
  EXPECT_EQ(skipped, 0u);
}

TEST(GeometricMean, DominatedLessByOutliersThanArithmetic) {
  const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 1000.0};
  const double gm = geometric_mean(xs);
  EXPECT_LT(gm, 5.0);  // arithmetic mean would be ~200
}

TEST(CoefficientOfVariation, UniformDataIsZero) {
  EXPECT_EQ(coefficient_of_variation({5.0, 5.0, 5.0}), 0.0);
}

TEST(CoefficientOfVariation, MatchesHandComputation) {
  // Population stddev of {2, 4} is 1, mean is 3.
  EXPECT_NEAR(coefficient_of_variation({2.0, 4.0}), 1.0 / 3.0, 1e-12);
}

TEST(CoefficientOfVariation, EdgeCases) {
  EXPECT_EQ(coefficient_of_variation({}), 0.0);
  EXPECT_EQ(coefficient_of_variation({0.0, 0.0}), 0.0);  // zero mean
}

TEST(Percentile, InterpolatesBetweenValues) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(HistogramTest, CountsAndProportions) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.7, 9.9}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.5, 1.5
  EXPECT_EQ(h.bin_count(1), 2u);  // 2.5, 2.7
  EXPECT_EQ(h.bin_count(4), 1u);  // 9.9
  EXPECT_NEAR(h.proportion(0), 0.4, 1e-12);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
}

TEST(HistogramTest, ValidatesBeforeComputingWidth) {
  // Regression: the constructor used to compute (hi - lo) / bins in the
  // member initializer list, i.e. *before* rejecting bins == 0 (integer
  // context would be UB; here a double division by zero) and hi <= lo.
  // Validation must win for every bad-argument combination, including the
  // ones whose width computation would "work".
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, std::nan(""), 4), std::invalid_argument);
}

TEST(HistogramTest, NonFiniteSamplesAreCountedNotBinned) {
  // Regression: add() used to clamp and cast any sample; casting NaN or
  // ±inf to an integer bin index is undefined behaviour.
  Histogram h(0.0, 10.0, 2);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(5.0);
  EXPECT_EQ(h.dropped(), 3u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bin_count(0) + h.bin_count(1), 1u);
  EXPECT_DOUBLE_EQ(h.proportion(1), 1.0);  // dropped samples not in the base
}

TEST(EmpiricalCdfTest, FractionAtOrBelow) {
  EmpiricalCdf cdf;
  cdf.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileInterpolates) {
  EmpiricalCdf cdf;
  cdf.add_all({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(EmpiricalCdfTest, InterleavedAddAndQuery) {
  EmpiricalCdf cdf;
  cdf.add(5.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(5.0), 1.0);
  cdf.add(1.0);  // forces re-sort on next query
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.5);
}

TEST(EmpiricalCdfTest, ConcurrentConstQueriesAreSafe) {
  // Regression: the lazy sort behind const queries used to mutate data_
  // unguarded, so two threads querying the same freshly-filled CDF raced
  // (caught by TSan; this test drives exactly that pattern). The first
  // query of each thread lands on the unsorted state simultaneously.
  EmpiricalCdf cdf;
  for (int i = 999; i >= 0; --i) cdf.add(static_cast<double>(i));
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cdf, t] {
      for (int q = 0; q < 64; ++q) {
        const double x = static_cast<double>((q * 16 + t) % 1000);
        const double f = cdf.fraction_at_or_below(x);
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(999.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
}

TEST(EmpiricalCdfTest, ConcurrentAddAndQueryAreSafe) {
  // Regression: add() used to skip the sort mutex entirely and queries read
  // data_.empty() before taking it, so a writer thread could race a reader's
  // lazy sort (flagged by the clang thread-safety annotations, visible to
  // TSan). Writers and readers now serialize on the same mutex.
  EmpiricalCdf cdf;
  cdf.add(0.5);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&cdf, t] {
      for (int i = 0; i < 256; ++i) {
        cdf.add(static_cast<double>((i * 7 + t) % 100));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&cdf] {
      for (int q = 0; q < 256; ++q) {
        const double f =
            cdf.fraction_at_or_below(static_cast<double>(q % 100));
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cdf.count(), 513u);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 99.0);
}

TEST(EmpiricalCdfTest, CopyAndMoveKeepSamples) {
  // The sort mutex makes the class non-trivially copyable; analysis code
  // returns CDFs by value, so the custom copy/move ops must carry the data.
  EmpiricalCdf a;
  a.add_all({3.0, 1.0, 2.0});
  EmpiricalCdf b(a);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.quantile(1.0), 3.0);
  EmpiricalCdf c;
  c = b;
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1.0), 1.0 / 3.0);
  EmpiricalCdf d(std::move(b));
  EXPECT_EQ(d.count(), 3u);
  a = std::move(d);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Summarize, ProducesPaperStyleRow) {
  const auto row = summarize("disk", {145.3, 157.8, 167.0});
  EXPECT_EQ(row.label, "disk");
  EXPECT_DOUBLE_EQ(row.min, 145.3);
  EXPECT_DOUBLE_EQ(row.max, 167.0);
  EXPECT_NEAR(row.mean, 156.7, 0.01);
  EXPECT_GT(row.stddev, 0.0);
}

}  // namespace
}  // namespace dare
