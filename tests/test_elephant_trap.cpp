#include "core/elephant_trap.h"

#include <gtest/gtest.h>

#include "net/profile.h"

namespace dare::core {
namespace {

storage::BlockMeta blk(BlockId id, FileId file, Bytes size = 100) {
  return storage::BlockMeta{id, file, size};
}

ElephantTrapParams params(double p, std::uint32_t threshold = 1) {
  ElephantTrapParams tp;
  tp.p = p;
  tp.threshold = threshold;
  return tp;
}

class ElephantTrapTest : public ::testing::Test {
 protected:
  ElephantTrapTest() : node_(0, net::cct_profile().disk, rng_) {}
  Rng rng_{51};
  storage::DataNode node_;
};

TEST_F(ElephantTrapTest, PEqualOneAlwaysReplicates) {
  ElephantTrapPolicy policy(node_, 1000, params(1.0), rng_);
  EXPECT_TRUE(policy.on_map_task(blk(1, 0), false));
  EXPECT_TRUE(policy.on_map_task(blk(2, 1), false));
  EXPECT_EQ(policy.replicas_created(), 2u);
}

TEST_F(ElephantTrapTest, PEqualZeroNeverReplicates) {
  ElephantTrapPolicy policy(node_, 1000, params(0.0), rng_);
  for (BlockId b = 0; b < 100; ++b) {
    EXPECT_FALSE(policy.on_map_task(blk(b, b), false));
  }
  EXPECT_EQ(policy.replicas_created(), 0u);
}

TEST_F(ElephantTrapTest, SamplingRateApproximatesP) {
  ElephantTrapPolicy policy(node_, 1000000, params(0.3), rng_);
  int created = 0;
  for (BlockId b = 0; b < 10000; ++b) {
    if (policy.on_map_task(blk(b, b), false)) ++created;
  }
  EXPECT_NEAR(static_cast<double>(created) / 10000.0, 0.3, 0.03);
}

TEST_F(ElephantTrapTest, LocalAccessIncrementsCountWithProbabilityP) {
  ElephantTrapPolicy policy(node_, 1000, params(1.0), rng_);
  policy.on_map_task(blk(1, 0), false);
  EXPECT_EQ(policy.access_count(1), 0u);
  policy.on_map_task(blk(1, 0), true);
  policy.on_map_task(blk(1, 0), true);
  EXPECT_EQ(policy.access_count(1), 2u);
}

TEST_F(ElephantTrapTest, UntrackedLocalAccessIsIgnored) {
  ElephantTrapPolicy policy(node_, 1000, params(1.0), rng_);
  EXPECT_FALSE(policy.on_map_task(blk(9, 0), true));
  EXPECT_EQ(policy.access_count(9), 0u);
  EXPECT_EQ(policy.tracked_blocks(), 0u);
}

TEST_F(ElephantTrapTest, BudgetNeverExceeded) {
  const Bytes budget = 350;
  ElephantTrapPolicy policy(node_, budget, params(1.0), rng_);
  for (BlockId b = 0; b < 100; ++b) {
    policy.on_map_task(blk(b, b), false);
    EXPECT_LE(node_.dynamic_bytes(), budget);
  }
}

TEST_F(ElephantTrapTest, ColdBlocksEvictedWhenFull) {
  ElephantTrapPolicy policy(node_, 300, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  policy.on_map_task(blk(3, 12), false);
  // All counts are 0 < threshold, so the next insert evicts one victim.
  EXPECT_TRUE(policy.on_map_task(blk(4, 13), false));
  EXPECT_EQ(node_.dynamic_blocks().size(), 3u);
  EXPECT_TRUE(node_.has_dynamic_block(4));
}

TEST_F(ElephantTrapTest, HotBlockSurvivesEviction) {
  ElephantTrapPolicy policy(node_, 300, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  policy.on_map_task(blk(3, 12), false);
  // Make block 1 hot: repeated local accesses.
  for (int i = 0; i < 8; ++i) policy.on_map_task(blk(1, 10), true);
  // Insert new blocks; the hot block must survive all evictions.
  for (BlockId b = 20; b < 26; ++b) {
    policy.on_map_task(blk(b, b), false);
    EXPECT_TRUE(node_.has_dynamic_block(1)) << "evicted at b=" << b;
  }
}

TEST_F(ElephantTrapTest, CompetitiveAgingHalvesCounts) {
  ElephantTrapPolicy policy(node_, 200, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  for (int i = 0; i < 4; ++i) policy.on_map_task(blk(1, 10), true);
  EXPECT_EQ(policy.access_count(1), 4u);
  // Insert: the scan halves counts until it finds block 2 (count 0).
  policy.on_map_task(blk(3, 12), false);
  EXPECT_FALSE(node_.has_dynamic_block(2));
  EXPECT_LE(policy.access_count(1), 2u);  // aged
}

TEST_F(ElephantTrapTest, AllHotBlocksMeansNoReplication) {
  ElephantTrapPolicy policy(node_, 200, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  // Give both very high counts; one scan cannot age them below threshold.
  for (int i = 0; i < 16; ++i) {
    policy.on_map_task(blk(1, 10), true);
    policy.on_map_task(blk(2, 11), true);
  }
  EXPECT_FALSE(policy.on_map_task(blk(3, 12), false));
  EXPECT_TRUE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_dynamic_block(2));
}

TEST_F(ElephantTrapTest, SameFileVictimBlocksReplication) {
  ElephantTrapPolicy policy(node_, 100, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 7), false);
  // Only resident block shares the incoming file: refuse to replicate.
  EXPECT_FALSE(policy.on_map_task(blk(2, 7), false));
  EXPECT_TRUE(node_.has_dynamic_block(1));
}

TEST_F(ElephantTrapTest, SameFileGuardHoldsUnderFullBudgetAging) {
  // Algorithm-2 regression: with the budget exactly full and every resident
  // replica belonging to the incoming block's file, repeated insert
  // attempts must never evict — even though each failed attempt's aging
  // scan keeps halving the residents' counts all the way to zero (which
  // would make them eviction candidates were it not for the guard).
  ElephantTrapPolicy policy(node_, 200, params(1.0, 1), rng_);
  ASSERT_TRUE(policy.on_map_task(blk(1, 7), false));
  ASSERT_TRUE(policy.on_map_task(blk(2, 7), false));
  for (int i = 0; i < 4; ++i) {
    policy.on_map_task(blk(1, 7), true);
    policy.on_map_task(blk(2, 7), true);
  }
  for (int round = 0; round < 6; ++round) {
    EXPECT_FALSE(policy.on_map_task(blk(3, 7), false)) << "round " << round;
    EXPECT_TRUE(node_.has_dynamic_block(1));
    EXPECT_TRUE(node_.has_dynamic_block(2));
  }
  EXPECT_EQ(policy.replicas_created(), 2u);
}

TEST_F(ElephantTrapTest, SameFileGuardHoldsAcrossLazyDeletion) {
  // The guard interacts with lazy deletion: an evicted victim is only
  // tombstoned (still on disk) until reclaim, and during that window the
  // same-file rule must keep holding for the survivors.
  ElephantTrapPolicy policy(node_, 200, params(1.0, 1), rng_);
  ASSERT_TRUE(policy.on_map_task(blk(1, 10), false));
  ASSERT_TRUE(policy.on_map_task(blk(2, 7), false));
  // Budget full; block 1 (file 10) is the only legal victim for an
  // incoming file-7 block — block 2 shares the file and must survive.
  ASSERT_TRUE(policy.on_map_task(blk(3, 7), false));
  EXPECT_FALSE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_any_copy(1));  // tombstoned, not yet reclaimed
  EXPECT_TRUE(node_.has_dynamic_block(2));
  EXPECT_TRUE(node_.has_dynamic_block(3));
  // The ring is now entirely file-7 and the budget full again: no file-7
  // insert may evict, across repeated aging rounds.
  for (int round = 0; round < 4; ++round) {
    EXPECT_FALSE(policy.on_map_task(blk(4, 7), false)) << "round " << round;
  }
  EXPECT_TRUE(node_.has_dynamic_block(2));
  EXPECT_TRUE(node_.has_dynamic_block(3));
  // Reclaim finishes the lazy deletion; only then do the bytes leave disk.
  node_.reclaim_marked();
  EXPECT_FALSE(node_.has_any_copy(1));
}

TEST_F(ElephantTrapTest, HigherThresholdEvictsWarmBlocks) {
  ElephantTrapPolicy policy(node_, 200, params(1.0, 5), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  // Counts 3 and 0: with threshold 5, even the warm block is evictable.
  for (int i = 0; i < 3; ++i) policy.on_map_task(blk(1, 10), true);
  EXPECT_TRUE(policy.on_map_task(blk(3, 12), false));
}

TEST_F(ElephantTrapTest, RemoteReadOfTrackedBlockCountsAccess) {
  ElephantTrapPolicy policy(node_, 1000, params(1.0), rng_);
  policy.on_map_task(blk(1, 0), false);
  EXPECT_FALSE(policy.on_map_task(blk(1, 0), false));
  EXPECT_EQ(policy.access_count(1), 1u);
  EXPECT_EQ(policy.replicas_created(), 1u);
}

TEST_F(ElephantTrapTest, BlockBiggerThanBudgetRefused) {
  ElephantTrapPolicy policy(node_, 50, params(1.0), rng_);
  EXPECT_FALSE(policy.on_map_task(blk(1, 0, 100), false));
}

TEST_F(ElephantTrapTest, NewestInsertIsScannedLast) {
  // Insertion "right before the eviction pointer" means the freshest block
  // is the last the aging scan reaches: with all counts at zero, the next
  // eviction must pick the oldest surviving entry, not the newest.
  ElephantTrapPolicy policy(node_, 300, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  policy.on_map_task(blk(3, 12), false);
  // Budget full; insert 4: the scan starts at the eviction pointer, which
  // sits just after the most recent insert — i.e., on the oldest blocks.
  EXPECT_TRUE(policy.on_map_task(blk(4, 13), false));
  EXPECT_TRUE(node_.has_dynamic_block(3));  // newest old entry survives
  EXPECT_TRUE(node_.has_dynamic_block(4));
}

TEST_F(ElephantTrapTest, CountsAgeAcrossRepeatedEvictionScans) {
  ElephantTrapPolicy policy(node_, 200, params(1.0, 1), rng_);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  for (int i = 0; i < 8; ++i) policy.on_map_task(blk(1, 10), true);
  ASSERT_EQ(policy.access_count(1), 8u);
  // Each insertion that needs an eviction halves block 1's count when the
  // scan passes it; after a few churn rounds it decays to near zero but the
  // halving never makes it negative.
  for (BlockId b = 20; b < 26; ++b) {
    policy.on_map_task(blk(b, b), false);
  }
  EXPECT_LE(policy.access_count(1), 8u);
}

TEST_F(ElephantTrapTest, DeterministicGivenSeed) {
  Rng r1(77);
  Rng r2(77);
  storage::DataNode n1(0, net::cct_profile().disk, r1);
  storage::DataNode n2(0, net::cct_profile().disk, r2);
  ElephantTrapPolicy p1(n1, 500, params(0.5), r1);
  ElephantTrapPolicy p2(n2, 500, params(0.5), r2);
  for (BlockId b = 0; b < 200; ++b) {
    EXPECT_EQ(p1.on_map_task(blk(b % 20, b % 7), b % 3 == 0),
              p2.on_map_task(blk(b % 20, b % 7), b % 3 == 0));
  }
  EXPECT_EQ(p1.replicas_created(), p2.replicas_created());
}

}  // namespace
}  // namespace dare::core
