#include "storage/namenode.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dare::storage {
namespace {

class NameNodeTest : public ::testing::Test {
 protected:
  Rng rng_{21};
};

TEST_F(NameNodeTest, CreateFileAssignsSequentialBlocks) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 4, 128 * kMiB, 3, 7);
  const auto& info = nn.file(f);
  EXPECT_EQ(info.name, "a");
  EXPECT_EQ(info.blocks.size(), 4u);
  EXPECT_EQ(info.block_size, 128 * kMiB);
  EXPECT_EQ(info.created, 7);
  EXPECT_EQ(info.total_bytes(), 4 * 128 * kMiB);
  for (BlockId b : info.blocks) {
    EXPECT_EQ(nn.block(b).file, f);
    EXPECT_EQ(nn.block(b).size, 128 * kMiB);
  }
}

TEST_F(NameNodeTest, PlacementUsesDistinctNodes) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 20, kMiB, 3, 0);
  for (BlockId b : nn.file(f).blocks) {
    const auto& locs = nn.locations(b);
    EXPECT_EQ(locs.size(), 3u);
    std::set<NodeId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), 3u);
    for (NodeId n : locs) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 10);
    }
  }
}

TEST_F(NameNodeTest, ReplicationClampedToClusterSize) {
  NameNode nn(2, nullptr, rng_);
  const FileId f = nn.create_file("a", 1, kMiB, 5, 0);
  EXPECT_EQ(nn.locations(nn.file(f).blocks[0]).size(), 2u);
}

TEST_F(NameNodeTest, RackAwarePlacementCoversTwoRacks) {
  net::TopologyOptions topo_opts;
  topo_opts.kind = net::TopologyKind::kMultiTier;
  topo_opts.nodes = 12;
  topo_opts.racks = 4;
  net::Topology topo(topo_opts, rng_);
  NameNode nn(12, &topo, rng_);
  const FileId f = nn.create_file("a", 30, kMiB, 3, 0);
  int two_rack_placements = 0;
  for (BlockId b : nn.file(f).blocks) {
    std::set<RackId> racks;
    for (NodeId n : nn.locations(b)) racks.insert(topo.rack_of(n));
    if (racks.size() >= 2) ++two_rack_placements;
  }
  // The policy tries hard to cover two racks (falls back only when random
  // search fails); expect the vast majority of placements succeed.
  EXPECT_GE(two_rack_placements, 27);
}

TEST_F(NameNodeTest, DynamicAddExtendsLocations) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 1, kMiB, 3, 0);
  const BlockId b = nn.file(f).blocks[0];
  // Find a node not already hosting the block.
  NodeId extra = 0;
  while (std::find(nn.locations(b).begin(), nn.locations(b).end(), extra) !=
         nn.locations(b).end()) {
    ++extra;
  }
  nn.report_dynamic_added(extra, {b});
  EXPECT_EQ(nn.replica_count(b), 4u);
  EXPECT_EQ(nn.dynamic_replica_count(), 1u);
  EXPECT_NE(std::find(nn.locations(b).begin(), nn.locations(b).end(), extra),
            nn.locations(b).end());
}

TEST_F(NameNodeTest, DuplicateDynamicAddIgnored) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 1, kMiB, 3, 0);
  const BlockId b = nn.file(f).blocks[0];
  nn.report_dynamic_added(9, {b});
  nn.report_dynamic_added(9, {b});
  EXPECT_EQ(nn.replica_count(b), 4u);
  EXPECT_EQ(nn.dynamic_replica_count(), 1u);
}

TEST_F(NameNodeTest, DynamicRemoveDropsOnlyDynamicReplica) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 1, kMiB, 3, 0);
  const BlockId b = nn.file(f).blocks[0];
  const NodeId static_holder = nn.static_locations(b)[0];
  nn.report_dynamic_added(9, {b});
  // Removing the static holder is refused (only dynamic replicas go away).
  nn.report_dynamic_removed(static_holder, {b});
  EXPECT_EQ(nn.replica_count(b), 4u);
  nn.report_dynamic_removed(9, {b});
  EXPECT_EQ(nn.replica_count(b), 3u);
  EXPECT_EQ(nn.dynamic_replica_count(), 0u);
}

TEST_F(NameNodeTest, RemoveOfAbsentReplicaIgnored) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 1, kMiB, 3, 0);
  const BlockId b = nn.file(f).blocks[0];
  nn.report_dynamic_removed(9, {b});  // no-op
  EXPECT_EQ(nn.replica_count(b), 3u);
}

TEST_F(NameNodeTest, UnknownIdsThrow) {
  NameNode nn(4, nullptr, rng_);
  EXPECT_THROW(nn.file(99), std::out_of_range);
  EXPECT_THROW(nn.block(99), std::out_of_range);
  EXPECT_THROW(nn.locations(99), std::out_of_range);
  EXPECT_THROW(nn.report_dynamic_added(0, {99}), std::out_of_range);
  EXPECT_THROW(nn.report_dynamic_removed(0, {99}), std::out_of_range);
}

TEST_F(NameNodeTest, InvalidCreateArgumentsThrow) {
  NameNode nn(4, nullptr, rng_);
  EXPECT_THROW(nn.create_file("a", 0, kMiB, 3, 0), std::invalid_argument);
  EXPECT_THROW(nn.create_file("a", 1, 0, 3, 0), std::invalid_argument);
  EXPECT_THROW(NameNode(0, nullptr, rng_), std::invalid_argument);
}

TEST_F(NameNodeTest, AllFilesInCreationOrder) {
  NameNode nn(4, nullptr, rng_);
  const FileId a = nn.create_file("a", 1, kMiB, 3, 0);
  const FileId b = nn.create_file("b", 1, kMiB, 3, 0);
  const auto files = nn.all_files();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], a);
  EXPECT_EQ(files[1], b);
  EXPECT_EQ(nn.file_count(), 2u);
  EXPECT_EQ(nn.block_count(), 2u);
}

TEST_F(NameNodeTest, StaticLocationsStableAfterDynamicChanges) {
  NameNode nn(10, nullptr, rng_);
  const FileId f = nn.create_file("a", 1, kMiB, 3, 0);
  const BlockId b = nn.file(f).blocks[0];
  const auto before = nn.static_locations(b);
  nn.report_dynamic_added(9, {b});
  nn.report_dynamic_removed(9, {b});
  EXPECT_EQ(nn.static_locations(b), before);
}

}  // namespace
}  // namespace dare::storage
