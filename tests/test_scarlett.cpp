#include "core/scarlett.h"

#include <gtest/gtest.h>

namespace dare::core {
namespace {

ScarlettParams params(double accesses_per_replica = 4.0, int cap = 10) {
  ScarlettParams p;
  p.accesses_per_replica = accesses_per_replica;
  p.max_replication = cap;
  return p;
}

TEST(Scarlett, NoAccessesNoOrders) {
  ScarlettPlanner planner(params());
  const auto orders = planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  EXPECT_TRUE(orders.empty());
}

TEST(Scarlett, PopularFileGetsMoreReplicas) {
  ScarlettPlanner planner(params(4.0));
  for (int i = 0; i < 16; ++i) planner.record_access(0);
  const auto orders = planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].file, 0);
  EXPECT_EQ(orders[0].current_replication, 3);
  // 16 accesses / 4 per replica = 4 -> target = 3 + 4 - 1 = 6.
  EXPECT_EQ(orders[0].target_replication, 6);
}

TEST(Scarlett, FewAccessesYieldNoIncrease) {
  ScarlettPlanner planner(params(4.0));
  planner.record_access(0);  // ceil(1/4) = 1 -> target = current
  const auto orders = planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  EXPECT_TRUE(orders.empty());
}

TEST(Scarlett, ReplicationCapRespected) {
  ScarlettPlanner planner(params(1.0, 5));
  for (int i = 0; i < 100; ++i) planner.record_access(0);
  const auto orders = planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].target_replication, 5);
}

TEST(Scarlett, BudgetLimitsOrders) {
  ScarlettPlanner planner(params(1.0));
  for (int i = 0; i < 8; ++i) planner.record_access(0);
  // Each extra replica costs 100 bytes; budget 150 cannot afford any
  // multi-replica plan for this file (needs several replicas).
  const auto orders = planner.plan_epoch(150, {{0, Bytes{100}}}, {{0, 3}});
  EXPECT_TRUE(orders.empty());
}

TEST(Scarlett, MostPopularFileWinsBudget) {
  ScarlettPlanner planner(params(4.0));
  for (int i = 0; i < 8; ++i) planner.record_access(0);
  for (int i = 0; i < 16; ++i) planner.record_access(1);
  // Budget affords only one file's expansion; file 1 (more accesses) wins.
  const std::unordered_map<FileId, Bytes> sizes{{0, Bytes{100}},
                                                {1, Bytes{100}}};
  const std::unordered_map<FileId, int> repl{{0, 3}, {1, 3}};
  const auto orders = planner.plan_epoch(300, sizes, repl);
  ASSERT_GE(orders.size(), 1u);
  EXPECT_EQ(orders[0].file, 1);
}

TEST(Scarlett, WindowResetsAfterPlanning) {
  ScarlettPlanner planner(params());
  for (int i = 0; i < 16; ++i) planner.record_access(0);
  EXPECT_EQ(planner.window_accesses(), 16u);
  (void)planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  EXPECT_EQ(planner.window_accesses(), 0u);
  // A second epoch with no accesses produces nothing.
  const auto orders = planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  EXPECT_TRUE(orders.empty());
}

TEST(Scarlett, UnknownFilesSkipped) {
  ScarlettPlanner planner(params(1.0));
  for (int i = 0; i < 10; ++i) planner.record_access(42);
  const auto orders = planner.plan_epoch(kGiB, {{0, kMiB}}, {{0, 3}});
  EXPECT_TRUE(orders.empty());
}

}  // namespace
}  // namespace dare::core
