#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dare::workload {
namespace {

WorkloadOptions small_options(std::size_t jobs = 200) {
  WorkloadOptions o;
  o.num_jobs = jobs;
  o.seed = 5;
  return o;
}

TEST(Workload, Wl1HasRequestedJobCount) {
  const auto wl = make_wl1(small_options(100));
  EXPECT_EQ(wl.name, "wl1");
  EXPECT_EQ(wl.jobs.size(), 100u);
  EXPECT_FALSE(wl.catalog.empty());
}

TEST(Workload, ArrivalsAreMonotonic) {
  for (const auto& wl : {make_wl1(small_options()), make_wl2(small_options())}) {
    for (std::size_t i = 1; i < wl.jobs.size(); ++i) {
      EXPECT_GE(wl.jobs[i].arrival, wl.jobs[i - 1].arrival);
    }
  }
}

TEST(Workload, Wl1UsesOnlySmallFiles) {
  const auto wl = make_wl1(small_options());
  for (const auto& job : wl.jobs) {
    EXPECT_LT(job.file_index, wl.catalog_spec.small_files);
  }
}

TEST(Workload, Wl2ContainsPeriodicLargeJobs) {
  auto opts = small_options(200);
  opts.large_period = 25;
  const auto wl = make_wl2(opts);
  std::size_t large_jobs = 0;
  for (const auto& job : wl.jobs) {
    if (job.file_index >= wl.catalog_spec.small_files) ++large_jobs;
  }
  // Jobs 25, 50, ..., appear every `large_period`.
  EXPECT_EQ(large_jobs, 199u / 25u);
}

TEST(Workload, Wl2LargeJobsHaveManyMaps) {
  const auto wl = make_wl2(small_options(100));
  for (const auto& job : wl.jobs) {
    const auto blocks = wl.catalog[job.file_index].blocks;
    if (job.file_index >= wl.catalog_spec.small_files) {
      EXPECT_GE(blocks, wl.catalog_spec.large_min_blocks);
    } else {
      EXPECT_LE(blocks, wl.catalog_spec.small_max_blocks);
    }
  }
}

TEST(Workload, PopularityIsHeavyTailed) {
  auto opts = small_options(2000);
  const auto wl = make_wl1(opts);
  const auto counts = wl.file_access_counts();
  // Top-ranked file receives far more accesses than the median file.
  const auto max_count = *std::max_element(counts.begin(), counts.end());
  std::size_t accessed_files = 0;
  for (auto c : counts) {
    if (c > 0) ++accessed_files;
  }
  EXPECT_GT(max_count, 2000u / 10u);  // >10% of accesses on rank-1 file
  EXPECT_GT(accessed_files, 10u);     // but the tail exists
}

TEST(Workload, Fig6CdfConcentratedOnTopRanks) {
  CatalogSpec catalog;
  const auto popularity = small_file_popularity(catalog, 1.1);
  // The paper's Fig. 6: the top ~20 ranks hold the bulk of the probability.
  EXPECT_GT(popularity.cdf(19), 0.6);
  EXPECT_NEAR(popularity.cdf(catalog.small_files - 1), 1.0, 1e-9);
}

TEST(Workload, JobShapeFieldsArePositive) {
  const auto wl = make_wl2(small_options());
  for (const auto& job : wl.jobs) {
    EXPECT_GT(job.map_cpu, 0);
    EXPECT_GT(job.reduce_cpu, 0);
    EXPECT_GE(job.reduces, 1u);
    EXPECT_LE(job.reduces, 8u);
    EXPECT_GT(job.shuffle_bytes, 0);
  }
}

TEST(Workload, DeterministicForSeed) {
  const auto a = make_wl2(small_options());
  const auto b = make_wl2(small_options());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].file_index, b.jobs[i].file_index);
  }
}

TEST(Workload, DifferentSeedsProduceDifferentStreams) {
  auto o1 = small_options();
  auto o2 = small_options();
  o2.seed = 6;
  const auto a = make_wl1(o1);
  const auto b = make_wl1(o2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].arrival != b.jobs[i].arrival) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, AccessCountsSumToJobs) {
  const auto wl = make_wl1(small_options(150));
  const auto counts = wl.file_access_counts();
  std::size_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 150u);
}

TEST(Workload, Wl2RequiresLargeFiles) {
  auto opts = small_options();
  opts.catalog.large_files = 0;
  EXPECT_THROW(make_wl2(opts), std::invalid_argument);
}

}  // namespace
}  // namespace dare::workload
