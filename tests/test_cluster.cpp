#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/trace_analysis.h"
#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

workload::Workload tiny_workload(std::size_t jobs = 30,
                                 std::uint64_t seed = 11) {
  workload::WorkloadOptions opts;
  opts.num_jobs = jobs;
  opts.seed = seed;
  opts.catalog.small_files = 20;
  opts.catalog.large_files = 3;
  opts.catalog.large_min_blocks = 8;
  opts.catalog.large_max_blocks = 16;
  return workload::make_wl1(opts);
}

ClusterOptions tiny_options(PolicyKind policy = PolicyKind::kVanilla,
                            SchedulerKind sched = SchedulerKind::kFifo) {
  ClusterOptions opts = paper_defaults(net::cct_profile(8), sched, policy);
  return opts;
}

TEST(Cluster, ConstructsWorkerTopology) {
  Cluster cluster(tiny_options());
  EXPECT_EQ(cluster.worker_count(), 7u);  // 8 nodes = 1 master + 7 workers
}

TEST(Cluster, RejectsDegenerateClusters) {
  ClusterOptions opts = tiny_options();
  opts.profile.topology.nodes = 1;
  EXPECT_THROW(Cluster{opts}, std::invalid_argument);
}

TEST(Cluster, RunsAllJobsToCompletion) {
  Cluster cluster(tiny_options());
  const auto wl = tiny_workload();
  const auto result = cluster.run(wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) {
    EXPECT_GT(jm.completion, jm.arrival);
    EXPECT_GT(jm.maps, 0u);
    EXPECT_LE(jm.local_maps, jm.maps);
    EXPECT_GT(jm.dedicated_runtime_s, 0.0);
    EXPECT_GE(jm.slowdown(), 0.9);  // can't beat a free perfect cluster much
  }
  EXPECT_GT(result.makespan, 0);
  EXPECT_GT(result.gmtt_s, 0.0);
}

TEST(Cluster, RunTwiceThrows) {
  Cluster cluster(tiny_options());
  const auto wl = tiny_workload();
  cluster.run(wl);
  EXPECT_THROW(cluster.run(wl), std::logic_error);
}

TEST(Cluster, VanillaCreatesNoDynamicReplicas) {
  Cluster cluster(tiny_options(PolicyKind::kVanilla));
  const auto result = cluster.run(tiny_workload());
  EXPECT_EQ(result.dynamic_replicas_created, 0u);
  EXPECT_EQ(result.dynamic_replica_disk_writes, 0u);
  EXPECT_EQ(result.blocks_created_per_job, 0.0);
  EXPECT_EQ(result.proactive_replication_bytes, 0u);
}

TEST(Cluster, StaticBlocksLoadedPerPlacement) {
  Cluster cluster(tiny_options());
  const auto wl = tiny_workload();
  (void)cluster.run(wl);
  // Every block's static locations hold the block.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      for (NodeId node : nn.static_locations(bid)) {
        EXPECT_TRUE(
            cluster.data_node(static_cast<std::size_t>(node))
                .has_static_block(bid));
      }
    }
  }
}

TEST(Cluster, DarePoliciesCreateReplicas) {
  for (PolicyKind policy : {PolicyKind::kGreedyLru, PolicyKind::kGreedyLfu,
                            PolicyKind::kElephantTrap}) {
    Cluster cluster(tiny_options(policy));
    const auto result = cluster.run(tiny_workload());
    EXPECT_GT(result.dynamic_replicas_created, 0u)
        << "policy=" << static_cast<int>(policy);
  }
}

TEST(Cluster, BudgetRespectedOnEveryNode) {
  auto opts = tiny_options(PolicyKind::kGreedyLru);
  opts.budget_fraction = 0.1;
  Cluster cluster(opts);
  (void)cluster.run(tiny_workload(60));
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    EXPECT_LE(cluster.data_node(w).dynamic_bytes(),
              cluster.node_budget_bytes());
  }
}

TEST(Cluster, DeterministicAcrossRuns) {
  const auto wl = tiny_workload();
  auto opts = tiny_options(PolicyKind::kElephantTrap);
  Cluster c1(opts);
  Cluster c2(opts);
  const auto r1 = c1.run(wl);
  const auto r2 = c2.run(wl);
  EXPECT_DOUBLE_EQ(r1.locality, r2.locality);
  EXPECT_DOUBLE_EQ(r1.gmtt_s, r2.gmtt_s);
  EXPECT_EQ(r1.dynamic_replicas_created, r2.dynamic_replicas_created);
  EXPECT_EQ(r1.makespan, r2.makespan);
}

TEST(Cluster, SeedChangesOutcome) {
  const auto wl = tiny_workload();
  auto o1 = tiny_options(PolicyKind::kElephantTrap);
  auto o2 = o1;
  o2.seed = 777;
  const auto r1 = run_once(o1, wl);
  const auto r2 = run_once(o2, wl);
  EXPECT_NE(r1.gmtt_s, r2.gmtt_s);
}

TEST(Cluster, DynamicReplicasRegisteredWithNameNode) {
  Cluster cluster(tiny_options(PolicyKind::kGreedyLru));
  (void)cluster.run(tiny_workload(60));
  // Every live dynamic replica that survived to the end and was reported
  // via heartbeat must be known to the name node, and vice versa the name
  // node must not know replicas a node does not hold.
  const auto& nn = cluster.name_node();
  std::size_t live_registered = 0;
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    for (BlockId bid : cluster.data_node(w).dynamic_blocks()) {
      const auto& locs = nn.locations(bid);
      if (std::find(locs.begin(), locs.end(), static_cast<NodeId>(w)) !=
          locs.end()) {
        ++live_registered;
      }
    }
  }
  EXPECT_GT(live_registered, 0u);
}

TEST(Cluster, FairSchedulerRunsToCompletionToo) {
  Cluster cluster(tiny_options(PolicyKind::kElephantTrap,
                               SchedulerKind::kFair));
  const auto result = cluster.run(tiny_workload());
  EXPECT_EQ(result.jobs.size(), 30u);
  EXPECT_GT(result.locality, 0.0);
}

TEST(Cluster, ScarlettModeMovesBytes) {
  auto opts = tiny_options(PolicyKind::kVanilla);
  opts.enable_scarlett = true;
  opts.scarlett.epoch = from_seconds(20.0);
  Cluster cluster(opts);
  const auto result = cluster.run(tiny_workload(60));
  EXPECT_GT(result.proactive_replication_bytes, 0u);
  EXPECT_GT(result.dynamic_replica_disk_writes, 0u);
}

TEST(Cluster, CvAfterComputedAndBeforeStable) {
  Cluster cluster(tiny_options(PolicyKind::kElephantTrap));
  const auto result = cluster.run(tiny_workload(60));
  EXPECT_GT(result.cv_before, 0.0);
  EXPECT_GT(result.cv_after, 0.0);
}

TEST(Cluster, MeanMapTimePlausible) {
  Cluster cluster(tiny_options());
  const auto result = cluster.run(tiny_workload());
  // setup 0.5s + read ~0.8-2s + cpu 0.5-2s.
  EXPECT_GT(result.mean_map_time_s, 1.0);
  EXPECT_LT(result.mean_map_time_s, 60.0);
}

TEST(Cluster, ValidatePassesAfterEveryConfiguration) {
  for (PolicyKind policy : {PolicyKind::kVanilla, PolicyKind::kGreedyLru,
                            PolicyKind::kElephantTrap}) {
    for (SchedulerKind sched : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
      Cluster cluster(tiny_options(policy, sched));
      (void)cluster.run(tiny_workload(60));
      EXPECT_NO_THROW(cluster.validate());
    }
  }
}

TEST(Cluster, RecordsAuditTraceWhenRequested) {
  auto opts = tiny_options(PolicyKind::kElephantTrap);
  opts.record_access_trace = true;
  Cluster cluster(opts);
  const auto wl = tiny_workload(60);
  const auto result = cluster.run(wl);
  const auto& trace = cluster.access_trace();
  // One access event per launched map task (re-executions would add more,
  // but this run has no failures).
  std::size_t total_maps = 0;
  for (const auto& jm : result.jobs) total_maps += jm.maps;
  EXPECT_EQ(trace.events.size(), total_maps);
  EXPECT_EQ(trace.files.size(), wl.catalog.size());
  EXPECT_EQ(trace.span, result.makespan);
  for (const auto& ev : trace.events) {
    EXPECT_GE(ev.time, 0);
    EXPECT_LE(ev.time, trace.span);
  }
  // The trace feeds the Section III analysis directly.
  const auto ranking = analysis::popularity_ranking(trace);
  EXPECT_EQ(ranking.size(), wl.catalog.size());
  EXPECT_GT(ranking.front().accesses, 0u);
}

TEST(Cluster, NoAuditTraceByDefault) {
  Cluster cluster(tiny_options());
  (void)cluster.run(tiny_workload());
  EXPECT_TRUE(cluster.access_trace().events.empty());
}

TEST(Cluster, ValidatePassesAfterFailuresAndSpeculation) {
  auto opts = tiny_options(PolicyKind::kElephantTrap);
  opts.failures.push_back({from_seconds(8.0), NodeId{2}});
  opts.enable_speculation = true;
  opts.profile.straggler_fraction = 0.3;
  opts.profile.straggler_slowdown = 4.0;
  Cluster cluster(opts);
  (void)cluster.run(tiny_workload(80));
  EXPECT_NO_THROW(cluster.validate());
}

}  // namespace
}  // namespace dare::cluster
