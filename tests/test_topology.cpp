#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dare::net {
namespace {

TopologyOptions single_rack(std::size_t nodes) {
  TopologyOptions o;
  o.kind = TopologyKind::kSingleRack;
  o.nodes = nodes;
  return o;
}

TopologyOptions multi_tier(std::size_t nodes, std::size_t racks,
                           std::size_t racks_per_pod = 4) {
  TopologyOptions o;
  o.kind = TopologyKind::kMultiTier;
  o.nodes = nodes;
  o.racks = racks;
  o.racks_per_pod = racks_per_pod;
  return o;
}

TEST(Topology, SingleRackAllPairsOneHop) {
  Rng rng(1);
  Topology topo(single_rack(8), rng);
  EXPECT_EQ(topo.rack_count(), 1u);
  for (NodeId a = 0; a < 8; ++a) {
    EXPECT_EQ(topo.hops(a, a), 0);
    for (NodeId b = 0; b < 8; ++b) {
      if (a != b) { EXPECT_EQ(topo.hops(a, b), 1); }
      EXPECT_TRUE(topo.same_rack(a, b));
    }
  }
}

TEST(Topology, HopsAreSymmetric) {
  Rng rng(2);
  Topology topo(multi_tier(20, 11), rng);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
    }
  }
}

TEST(Topology, MultiTierHopValues) {
  Rng rng(3);
  Topology topo(multi_tier(30, 10, 4), rng);
  for (NodeId a = 0; a < 30; ++a) {
    for (NodeId b = 0; b < 30; ++b) {
      const int h = topo.hops(a, b);
      if (a == b) {
        EXPECT_EQ(h, 0);
      } else if (topo.same_rack(a, b)) {
        EXPECT_EQ(h, 1);
      } else {
        EXPECT_TRUE(h == 4 || h == 5) << "hops=" << h;
      }
    }
  }
}

TEST(Topology, CrossPodIsFiveHops) {
  Rng rng(4);
  Topology topo(multi_tier(40, 12, 4), rng);
  bool saw_cross_pod = false;
  for (NodeId a = 0; a < 40 && !saw_cross_pod; ++a) {
    for (NodeId b = 0; b < 40; ++b) {
      const RackId ra = topo.rack_of(a);
      const RackId rb = topo.rack_of(b);
      if (ra / 4 != rb / 4) {
        EXPECT_EQ(topo.hops(a, b), 5);
        saw_cross_pod = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_cross_pod);
}

TEST(Topology, MultiTierSpreadsNodesAcrossRacks) {
  Rng rng(5);
  Topology topo(multi_tier(20, 11), rng);
  std::set<RackId> racks;
  for (NodeId n = 0; n < 20; ++n) racks.insert(topo.rack_of(n));
  EXPECT_GE(racks.size(), 5u);  // provider scatters the allocation
}

TEST(Topology, Ec2StyleDistributionPeaksAtFourHops) {
  // Fig. 1 of the paper: with 20 instances scattered across racks, the mode
  // of the pairwise hop distribution is 4. Use the EC2 profile's own
  // topology parameters and check across several placements.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Topology topo(multi_tier(20, 11, 10), rng);
    std::size_t counts[8] = {};
    for (int h : topo.all_pair_hops()) {
      ++counts[std::min(h, 7)];
    }
    // 4 hops must be the most common distance.
    for (int h = 0; h < 8; ++h) {
      if (h != 4) { EXPECT_GE(counts[4], counts[h]) << "seed " << seed; }
    }
  }
}

TEST(Topology, AllPairHopsCountsPairs) {
  Rng rng(7);
  Topology topo(single_rack(10), rng);
  EXPECT_EQ(topo.all_pair_hops().size(), 45u);  // C(10,2)
}

TEST(Topology, DeterministicForSameSeed) {
  Rng rng1(9);
  Rng rng2(9);
  Topology a(multi_tier(25, 13), rng1);
  Topology b(multi_tier(25, 13), rng2);
  for (NodeId n = 0; n < 25; ++n) {
    EXPECT_EQ(a.rack_of(n), b.rack_of(n));
  }
}

TEST(Topology, RejectsBadOptions) {
  Rng rng(8);
  EXPECT_THROW(Topology(single_rack(0), rng), std::invalid_argument);
  auto bad_racks = multi_tier(5, 0);
  EXPECT_THROW(Topology(bad_racks, rng), std::invalid_argument);
  auto bad_pod = multi_tier(5, 3, 0);
  EXPECT_THROW(Topology(bad_pod, rng), std::invalid_argument);
}

// Construction-time validation names the offending field (same style as
// faults::validate_straggler_params), one scenario per field.
std::string construction_error(const TopologyOptions& options) {
  Rng rng(9);
  try {
    Topology topo(options, rng);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(Topology, ZeroRacksThrowsNamingField) {
  const std::string what = construction_error(multi_tier(5, 0));
  EXPECT_NE(what.find("TopologyOptions.racks"), std::string::npos) << what;
}

TEST(Topology, ZeroRacksPerPodThrowsNamingField) {
  const std::string what = construction_error(multi_tier(5, 3, 0));
  EXPECT_NE(what.find("TopologyOptions.racks_per_pod"), std::string::npos)
      << what;
}

TEST(Topology, MoreRacksThanNodesThrowsNamingField) {
  const std::string what = construction_error(multi_tier(5, 6));
  EXPECT_NE(what.find("TopologyOptions.racks"), std::string::npos) << what;
  EXPECT_NE(what.find("nodes"), std::string::npos) << what;
}

TEST(Topology, BadNodeIdThrows) {
  Rng rng(10);
  Topology topo(single_rack(5), rng);
  EXPECT_THROW(topo.rack_of(-1), std::out_of_range);
  EXPECT_THROW(topo.rack_of(5), std::out_of_range);
  EXPECT_THROW(topo.hops(0, 99), std::out_of_range);
}

}  // namespace
}  // namespace dare::net
