// Property-style sweeps over the DARE parameter space (TEST_P grids).
//
// These are the invariants the paper's design arguments rest on; they must
// hold at *every* parameter combination, not just the defaults:
//   * the replication budget is never exceeded on any node;
//   * dynamic replication never loses a static replica;
//   * DARE never hurts map locality relative to vanilla on heavy-tailed
//     workloads;
//   * runs are bit-deterministic in their metrics for a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "cluster/cluster.h"
#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

workload::Workload sweep_workload(std::uint64_t seed = 17) {
  workload::WorkloadOptions opts;
  opts.num_jobs = 60;
  opts.seed = seed;
  opts.catalog.small_files = 24;
  opts.catalog.large_files = 3;
  opts.catalog.large_min_blocks = 8;
  opts.catalog.large_max_blocks = 12;
  return workload::make_wl2(opts);
}

using SweepParam = std::tuple<double /*p*/, int /*threshold*/,
                              double /*budget*/, int /*scheduler*/>;

class TrapSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TrapSweep, InvariantsHoldAcrossParameterGrid) {
  const auto [p, threshold, budget, sched] = GetParam();
  ClusterOptions opts = paper_defaults(
      net::cct_profile(8),
      sched == 0 ? SchedulerKind::kFifo : SchedulerKind::kFair,
      PolicyKind::kElephantTrap);
  opts.trap.p = p;
  opts.trap.threshold = static_cast<std::uint32_t>(threshold);
  opts.budget_fraction = budget;

  Cluster cluster(opts);
  const auto wl = sweep_workload();
  const auto result = cluster.run(wl);

  // 1. Every job completed, locality within [0, 1].
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_GE(result.locality, 0.0);
  EXPECT_LE(result.locality, 1.0);

  // 2. Budget invariant on every node.
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    EXPECT_LE(cluster.data_node(w).dynamic_bytes(),
              cluster.node_budget_bytes())
        << "node " << w << " p=" << p << " thr=" << threshold
        << " budget=" << budget;
  }

  // 3. Static replicas never lost.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      const auto& statics = nn.static_locations(bid);
      const auto& locs = nn.locations(bid);
      for (NodeId node : statics) {
        EXPECT_NE(std::find(locs.begin(), locs.end(), node), locs.end());
      }
      EXPECT_GE(locs.size(), statics.size());
    }
  }

  // 4. p = 0 must behave exactly like vanilla (no replication at all).
  if (p == 0.0) {
    EXPECT_EQ(result.dynamic_replicas_created, 0u);
  }
}

std::string sweep_param_name(
    const ::testing::TestParamInfo<SweepParam>& info) {
  const double p = std::get<0>(info.param);
  const int thr = std::get<1>(info.param);
  const double budget = std::get<2>(info.param);
  const int sched = std::get<3>(info.param);
  return "p" + std::to_string(static_cast<int>(p * 10)) + "_thr" +
         std::to_string(thr) + "_b" +
         std::to_string(static_cast<int>(budget * 100)) +
         (sched == 0 ? "_fifo" : "_fair");
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, TrapSweep,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.9),
                       ::testing::Values(1, 3),
                       ::testing::Values(0.05, 0.2, 0.5),
                       ::testing::Values(0, 1)),
    sweep_param_name);

class PolicySweep
    : public ::testing::TestWithParam<std::tuple<int /*policy*/, int>> {};

TEST_P(PolicySweep, DareNeverHurtsLocality) {
  const auto [policy, sched] = GetParam();
  const SchedulerKind scheduler =
      sched == 0 ? SchedulerKind::kFifo : SchedulerKind::kFair;
  const auto wl = sweep_workload();

  const auto vanilla = run_once(
      paper_defaults(net::cct_profile(8), scheduler, PolicyKind::kVanilla),
      wl);
  const auto dare = run_once(
      paper_defaults(net::cct_profile(8), scheduler,
                     static_cast<PolicyKind>(policy)),
      wl);
  // Allow an epsilon for scheduling noise: when the Fair scheduler is
  // already near its locality ceiling, replication slightly perturbs task
  // durations and hence delay-scheduling decisions, which can cost a few
  // launches at this tiny scale. The shape property is that replication
  // does not *materially* degrade locality.
  EXPECT_GE(dare.locality, vanilla.locality - 0.06)
      << "policy=" << policy << " sched=" << sched;
}

std::string policy_param_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  return "policy" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) == 0 ? "_fifo" : "_fair");
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(PolicyKind::kGreedyLru),
                          static_cast<int>(PolicyKind::kGreedyLfu),
                          static_cast<int>(PolicyKind::kElephantTrap)),
        ::testing::Values(0, 1)),
    policy_param_name);

/// Profile dimension: the same invariants must hold on the virtualized
/// multi-rack EC2 profile, with failures and speculation in the mix.
class ProfileSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ProfileSweep, InvariantsAcrossProfilesAndFeatures) {
  const auto [profile, policy, features] = GetParam();
  ClusterOptions opts = paper_defaults(
      profile == 0 ? net::cct_profile(10) : net::ec2_profile(10),
      SchedulerKind::kFair, static_cast<PolicyKind>(policy));
  if (features & 1) {
    opts.failures.push_back({from_seconds(6.0), NodeId{2}});
  }
  if (features & 2) {
    opts.enable_speculation = true;
    opts.profile.straggler_fraction = 0.2;
    opts.profile.straggler_slowdown = 3.0;
  }
  Cluster cluster(opts);
  const auto wl = sweep_workload();
  const auto result = cluster.run(wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_NO_THROW(cluster.validate());
  EXPECT_GE(result.rack_locality, result.locality);
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    EXPECT_LE(cluster.data_node(w).dynamic_bytes(),
              cluster.node_budget_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndFeatures, ProfileSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(
                           static_cast<int>(PolicyKind::kVanilla),
                           static_cast<int>(PolicyKind::kElephantTrap)),
                       ::testing::Values(0, 1, 2, 3)));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, MetricsAreDeterministic) {
  const std::uint64_t seed = GetParam();
  ClusterOptions opts = paper_defaults(
      net::cct_profile(8), SchedulerKind::kFair, PolicyKind::kElephantTrap,
      seed);
  const auto wl = sweep_workload(seed);
  const auto r1 = run_once(opts, wl);
  const auto r2 = run_once(opts, wl);
  EXPECT_DOUBLE_EQ(r1.locality, r2.locality);
  EXPECT_DOUBLE_EQ(r1.gmtt_s, r2.gmtt_s);
  EXPECT_DOUBLE_EQ(r1.mean_slowdown, r2.mean_slowdown);
  EXPECT_DOUBLE_EQ(r1.cv_after, r2.cv_after);
  EXPECT_EQ(r1.dynamic_replica_disk_writes, r2.dynamic_replica_disk_writes);
  EXPECT_EQ(r1.makespan, r2.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 42u, 1234u, 99999u));

class BudgetMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(BudgetMonotonicity, LargerBudgetNeverBreaksInvariants) {
  ClusterOptions opts = paper_defaults(net::cct_profile(8),
                                       SchedulerKind::kFifo,
                                       PolicyKind::kGreedyLru);
  opts.budget_fraction = GetParam();
  Cluster cluster(opts);
  const auto result = cluster.run(sweep_workload());
  EXPECT_EQ(result.jobs.size(), 60u);
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    EXPECT_LE(cluster.data_node(w).dynamic_bytes(),
              cluster.node_budget_bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetMonotonicity,
                         ::testing::Values(0.0, 0.05, 0.1, 0.3, 0.7, 1.0));

}  // namespace
}  // namespace dare::cluster
