#include "sched/fifo_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace dare::sched {
namespace {

JobSpec make_job(JobId id, std::size_t maps, BlockId first_block,
                 std::size_t reduces = 1) {
  JobSpec spec;
  spec.id = id;
  spec.arrival = 10 * id;
  for (std::size_t i = 0; i < maps; ++i) {
    spec.maps.push_back(
        MapTaskSpec{first_block + static_cast<BlockId>(i), 128, 1000});
  }
  spec.reduces = reduces;
  return spec;
}

/// Locator with per-node local block sets.
class MapLocator final : public BlockLocator {
 public:
  void add(NodeId node, BlockId block) { local_[node].insert(block); }
  bool is_local(NodeId node, BlockId block) const override {
    const auto it = local_.find(node);
    return it != local_.end() && it->second.count(block) != 0;
  }

 private:
  std::map<NodeId, std::set<BlockId>> local_;
};

class FifoTest : public ::testing::Test {
 protected:
  FifoScheduler sched_;
  JobTable jobs_;
  MapLocator locator_;
};

TEST_F(FifoTest, NoJobsNoSelection) {
  EXPECT_FALSE(sched_.select_map(0, 0, jobs_, locator_).has_value());
  EXPECT_FALSE(sched_.select_reduce(jobs_).has_value());
}

TEST_F(FifoTest, HeadOfLineJobServedFirst) {
  jobs_.add_job(make_job(1, 1, 100));
  jobs_.add_job(make_job(2, 1, 200));
  const auto sel = sched_.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 1);
}

TEST_F(FifoTest, PrefersLocalTaskWithinHeadJob) {
  jobs_.add_job(make_job(1, 3, 100));
  locator_.add(0, 102);
  const auto sel = sched_.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(sel->node_local());
  const auto& rt = jobs_.job(1);
  EXPECT_EQ(rt.spec.maps[rt.pending_maps[sel->pending_index]].block, 102);
}

TEST_F(FifoTest, LaunchesNonLocalImmediatelyWhenNoLocalWork) {
  jobs_.add_job(make_job(1, 2, 100));
  locator_.add(1, 100);  // local only on another node
  const auto sel = sched_.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_FALSE(sel->node_local());  // FIFO never waits
  EXPECT_EQ(sel->job, 1);
}

TEST_F(FifoTest, NeverSkipsToLaterJobWhileHeadHasPendingMaps) {
  jobs_.add_job(make_job(1, 1, 100));
  jobs_.add_job(make_job(2, 1, 200));
  locator_.add(0, 200);  // job 2 would be local here
  const auto sel = sched_.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->job, 1);  // strict FIFO
  EXPECT_FALSE(sel->node_local());
}

TEST_F(FifoTest, MovesToNextJobWhenHeadFullyLaunched) {
  jobs_.add_job(make_job(1, 1, 100));
  jobs_.add_job(make_job(2, 1, 200));
  const auto first = sched_.select_map(0, 0, jobs_, locator_);
  jobs_.launch_map(first->job, first->pending_index, first->locality);
  const auto second = sched_.select_map(0, 0, jobs_, locator_);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->job, 2);
}

TEST_F(FifoTest, ReduceOnlyAfterMapsDone) {
  jobs_.add_job(make_job(1, 1, 100));
  EXPECT_FALSE(sched_.select_reduce(jobs_).has_value());
  jobs_.launch_map(1, 0, Locality::kNodeLocal);
  EXPECT_FALSE(sched_.select_reduce(jobs_).has_value());
  jobs_.complete_map(1, 1);
  const auto r = sched_.select_reduce(jobs_);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 1);
}

TEST_F(FifoTest, ReducesServedInArrivalOrder) {
  jobs_.add_job(make_job(1, 1, 100, 2));
  jobs_.add_job(make_job(2, 1, 200, 2));
  for (JobId j : {JobId{1}, JobId{2}}) {
    jobs_.launch_map(j, 0, Locality::kNodeLocal);
    jobs_.complete_map(j, 1);
  }
  EXPECT_EQ(*sched_.select_reduce(jobs_), 1);
  jobs_.launch_reduce(1);
  EXPECT_EQ(*sched_.select_reduce(jobs_), 1);  // still has a pending reduce
  jobs_.launch_reduce(1);
  EXPECT_EQ(*sched_.select_reduce(jobs_), 2);
}

TEST_F(FifoTest, SchedulerReportsName) { EXPECT_EQ(sched_.name(), "fifo"); }

}  // namespace
}  // namespace dare::sched
