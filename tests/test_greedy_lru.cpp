#include "core/greedy_lru.h"

#include <gtest/gtest.h>

#include "net/profile.h"

namespace dare::core {
namespace {

storage::BlockMeta blk(BlockId id, FileId file, Bytes size = 100) {
  return storage::BlockMeta{id, file, size};
}

class GreedyLruTest : public ::testing::Test {
 protected:
  GreedyLruTest() : node_(0, net::cct_profile().disk, rng_) {}
  Rng rng_{41};
  storage::DataNode node_;
};

TEST_F(GreedyLruTest, ReplicatesEveryRemoteRead) {
  GreedyLruPolicy policy(node_, 1000);
  EXPECT_TRUE(policy.on_map_task(blk(1, 0), /*local=*/false));
  EXPECT_TRUE(policy.on_map_task(blk(2, 1), false));
  EXPECT_EQ(policy.replicas_created(), 2u);
  EXPECT_TRUE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_dynamic_block(2));
}

TEST_F(GreedyLruTest, LocalReadNeverReplicates) {
  GreedyLruPolicy policy(node_, 1000);
  EXPECT_FALSE(policy.on_map_task(blk(1, 0), /*local=*/true));
  EXPECT_EQ(policy.replicas_created(), 0u);
  EXPECT_FALSE(node_.has_dynamic_block(1));
}

TEST_F(GreedyLruTest, EvictsLeastRecentlyUsedWhenFull) {
  GreedyLruPolicy policy(node_, 300);  // room for 3 blocks of 100
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  policy.on_map_task(blk(3, 12), false);
  // Access block 1 so block 2 becomes LRU.
  policy.on_map_task(blk(1, 10), true);
  policy.on_map_task(blk(4, 13), false);
  EXPECT_TRUE(node_.has_dynamic_block(1));
  EXPECT_FALSE(node_.has_dynamic_block(2));  // evicted
  EXPECT_TRUE(node_.has_dynamic_block(3));
  EXPECT_TRUE(node_.has_dynamic_block(4));
}

TEST_F(GreedyLruTest, BudgetNeverExceeded) {
  const Bytes budget = 450;
  GreedyLruPolicy policy(node_, budget);
  for (BlockId b = 0; b < 50; ++b) {
    policy.on_map_task(blk(b, b), false);
    EXPECT_LE(node_.dynamic_bytes(), budget);
  }
}

TEST_F(GreedyLruTest, SameFileVictimIsSkipped) {
  GreedyLruPolicy policy(node_, 200);
  policy.on_map_task(blk(1, 7), false);
  policy.on_map_task(blk(2, 7), false);
  // Incoming block of the same file 7: neither resident block of file 7 may
  // be evicted, so the insert fails and both stay.
  EXPECT_FALSE(policy.on_map_task(blk(3, 7), false));
  EXPECT_TRUE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_dynamic_block(2));
  EXPECT_FALSE(node_.has_dynamic_block(3));
}

TEST_F(GreedyLruTest, OtherFileVictimEvictedBeforeSameFile) {
  GreedyLruPolicy policy(node_, 200);
  policy.on_map_task(blk(1, 7), false);   // same file as incoming, older
  policy.on_map_task(blk(2, 8), false);
  EXPECT_TRUE(policy.on_map_task(blk(3, 7), false));
  EXPECT_TRUE(node_.has_dynamic_block(1));   // protected (same file)
  EXPECT_FALSE(node_.has_dynamic_block(2));  // evicted despite being MRU-er
  EXPECT_TRUE(node_.has_dynamic_block(3));
}

TEST_F(GreedyLruTest, BlockLargerThanBudgetRefused) {
  GreedyLruPolicy policy(node_, 50);
  EXPECT_FALSE(policy.on_map_task(blk(1, 0, 100), false));
  EXPECT_EQ(node_.dynamic_bytes(), 0);
}

TEST_F(GreedyLruTest, RemoteReadOfTrackedBlockOnlyTouches) {
  GreedyLruPolicy policy(node_, 300);
  policy.on_map_task(blk(1, 0), false);
  // Replica exists locally but metadata lag may still mark tasks remote.
  EXPECT_FALSE(policy.on_map_task(blk(1, 0), false));
  EXPECT_EQ(policy.replicas_created(), 1u);
  EXPECT_EQ(node_.dynamic_insertions(), 1u);
}

TEST_F(GreedyLruTest, EvictionMarksForLazyDeletion) {
  GreedyLruPolicy policy(node_, 100);
  policy.on_map_task(blk(1, 0), false);
  policy.on_map_task(blk(2, 1), false);  // evicts block 1
  EXPECT_EQ(node_.marked_count(), 1u);
  EXPECT_FALSE(node_.has_visible_block(1));
}

TEST_F(GreedyLruTest, EvictionOrderFollowsUsageNotInsertion) {
  GreedyLruPolicy policy(node_, 300);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  policy.on_map_task(blk(3, 12), false);
  // Touch in reverse insertion order: 1 is now MRU, 2 middle, 3 LRU... via
  // local reads.
  policy.on_map_task(blk(3, 12), true);
  policy.on_map_task(blk(2, 11), true);
  policy.on_map_task(blk(1, 10), true);
  policy.on_map_task(blk(4, 13), false);  // evicts 3 (LRU after touches)
  EXPECT_FALSE(node_.has_dynamic_block(3));
  EXPECT_TRUE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_dynamic_block(2));
}

TEST_F(GreedyLruTest, TrackedBlocksMatchesNodeContents) {
  GreedyLruPolicy policy(node_, 500);
  for (BlockId b = 0; b < 5; ++b) policy.on_map_task(blk(b, b), false);
  EXPECT_EQ(policy.tracked_blocks(), node_.dynamic_blocks().size());
}

}  // namespace
}  // namespace dare::core
