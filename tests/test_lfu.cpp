#include "core/lfu.h"

#include <gtest/gtest.h>

#include "net/profile.h"

namespace dare::core {
namespace {

storage::BlockMeta blk(BlockId id, FileId file, Bytes size = 100) {
  return storage::BlockMeta{id, file, size};
}

class LfuTest : public ::testing::Test {
 protected:
  LfuTest() : node_(0, net::cct_profile().disk, rng_) {}
  Rng rng_{61};
  storage::DataNode node_;
};

TEST_F(LfuTest, ReplicatesRemoteReads) {
  GreedyLfuPolicy policy(node_, 1000);
  EXPECT_TRUE(policy.on_map_task(blk(1, 0), false));
  EXPECT_EQ(policy.replicas_created(), 1u);
  EXPECT_EQ(policy.frequency(1), 1u);
}

TEST_F(LfuTest, LocalReadsIncrementFrequency) {
  GreedyLfuPolicy policy(node_, 1000);
  policy.on_map_task(blk(1, 0), false);
  policy.on_map_task(blk(1, 0), true);
  policy.on_map_task(blk(1, 0), true);
  EXPECT_EQ(policy.frequency(1), 3u);
}

TEST_F(LfuTest, EvictsLeastFrequentlyUsed) {
  GreedyLfuPolicy policy(node_, 300);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  policy.on_map_task(blk(3, 12), false);
  policy.on_map_task(blk(1, 10), true);
  policy.on_map_task(blk(3, 12), true);
  // Block 2 has the lowest count -> evicted.
  EXPECT_TRUE(policy.on_map_task(blk(4, 13), false));
  EXPECT_FALSE(node_.has_dynamic_block(2));
  EXPECT_TRUE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_dynamic_block(3));
}

TEST_F(LfuTest, TieBrokenByInsertionAge) {
  GreedyLfuPolicy policy(node_, 200);
  policy.on_map_task(blk(1, 10), false);
  policy.on_map_task(blk(2, 11), false);
  // Equal frequencies: the older entry (block 1) is evicted first.
  policy.on_map_task(blk(3, 12), false);
  EXPECT_FALSE(node_.has_dynamic_block(1));
  EXPECT_TRUE(node_.has_dynamic_block(2));
}

TEST_F(LfuTest, SameFileVictimProtected) {
  GreedyLfuPolicy policy(node_, 100);
  policy.on_map_task(blk(1, 7), false);
  EXPECT_FALSE(policy.on_map_task(blk(2, 7), false));
  EXPECT_TRUE(node_.has_dynamic_block(1));
}

TEST_F(LfuTest, BudgetNeverExceeded) {
  const Bytes budget = 250;
  GreedyLfuPolicy policy(node_, budget);
  for (BlockId b = 0; b < 40; ++b) {
    policy.on_map_task(blk(b, b), false);
    EXPECT_LE(node_.dynamic_bytes(), budget);
  }
}

TEST_F(LfuTest, NoAgingKeepsFormerlyHotBlocks) {
  // The LFU failure mode the ElephantTrap fixes: a block with high history
  // count survives even when it stops being accessed.
  GreedyLfuPolicy policy(node_, 200);
  policy.on_map_task(blk(1, 10), false);
  for (int i = 0; i < 50; ++i) policy.on_map_task(blk(1, 10), true);
  policy.on_map_task(blk(2, 11), false);
  // Churn many new blocks; block 1 is never the LFU victim.
  for (BlockId b = 20; b < 40; ++b) {
    policy.on_map_task(blk(b, b), false);
    EXPECT_TRUE(node_.has_dynamic_block(1));
  }
}

}  // namespace
}  // namespace dare::core
