// Tests for the bench CLI validator: unknown_args() is the pure core of
// bench::parse_args, which rejects typo'd knobs instead of silently running
// the default configuration.
#include "bench_common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dare::bench {
namespace {

TEST(UnknownArgs, AcceptsClusterOverrideAndCommonKeys) {
  const auto cfg = Config::from_string(
      "nodes = 20\npolicy = lru\nseed = 3\ncsv = out\nprogress = 1\n");
  EXPECT_TRUE(unknown_args(cfg, {}, {}).empty());
}

TEST(UnknownArgs, AcceptsBinarySpecificExtraKeys) {
  const auto cfg = Config::from_string("jobs = 100\nseeds = 3\n");
  EXPECT_TRUE(unknown_args(cfg, {}, {"jobs", "seeds"}).empty());
  // The same keys without the extras list are unknown: each binary opts
  // into exactly the knobs it reads.
  const auto unknown = unknown_args(cfg, {}, {});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "jobs=...");
  EXPECT_EQ(unknown[1], "seeds=...");
}

TEST(UnknownArgs, FlagsTyposAndPositionals) {
  const auto cfg = Config::from_string("nodse = 8\njobs = 10\n");
  const auto unknown = unknown_args(cfg, {"stray"}, {"jobs"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "stray");        // positionals lead, verbatim
  EXPECT_EQ(unknown[1], "nodse=...");    // then unknown keys, sorted
}

TEST(UnknownArgs, CommonKeysAreCsvAndProgress) {
  const auto& keys = common_bench_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "csv");
  EXPECT_EQ(keys[1], "progress");
}

}  // namespace
}  // namespace dare::bench
