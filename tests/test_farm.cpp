// Tests for the resumable experiment farm: grid expansion order, canonical
// item keys, journal round-trip/torn-tail handling, parallel-vs-serial
// determinism, and byte-identical resume of an interrupted sweep.
#include "cluster/farm.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

/// A grid small enough for unit tests: 6 nodes, 25 jobs, 2 schedulers x
/// 2 policies = 4 items.
Config small_grid() {
  Config spec;
  spec.set("profile", "cct");
  spec.set("nodes", "6");
  spec.set("jobs", "25");
  spec.set("scheduler", "fifo,fair");
  spec.set("policy", "vanilla,elephant-trap");
  spec.set("seed", "7");
  spec.set("workload", "wl1");
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ExpandGrid, CartesianProductInSortedKeyOrder) {
  const auto items = expand_grid(small_grid());
  ASSERT_EQ(items.size(), 4u);
  // Axes iterate in sorted key order ("policy" < "scheduler") with the
  // last key varying fastest, regardless of spec insertion order.
  EXPECT_EQ(items[0].get_string("policy", ""), "vanilla");
  EXPECT_EQ(items[0].get_string("scheduler", ""), "fifo");
  EXPECT_EQ(items[1].get_string("policy", ""), "vanilla");
  EXPECT_EQ(items[1].get_string("scheduler", ""), "fair");
  EXPECT_EQ(items[2].get_string("policy", ""), "elephant-trap");
  EXPECT_EQ(items[2].get_string("scheduler", ""), "fifo");
  EXPECT_EQ(items[3].get_string("policy", ""), "elephant-trap");
  EXPECT_EQ(items[3].get_string("scheduler", ""), "fair");
  // Constant keys are carried into every item verbatim.
  for (const auto& item : items) {
    EXPECT_EQ(item.get_string("nodes", ""), "6");
    EXPECT_EQ(item.get_string("workload", ""), "wl1");
  }
}

TEST(ExpandGrid, SingleValuedSpecYieldsOneItem) {
  Config spec;
  spec.set("nodes", "8");
  spec.set("seed", "1");
  const auto items = expand_grid(spec);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].get_string("nodes", ""), "8");
}

TEST(CanonicalItemKey, InsertionOrderIndependent) {
  Config a;
  a.set("scheduler", "fifo");
  a.set("nodes", "6");
  a.set("policy", "vanilla");
  Config b;
  b.set("policy", "vanilla");
  b.set("scheduler", "fifo");
  b.set("nodes", "6");
  EXPECT_EQ(canonical_item_key(a), canonical_item_key(b));
  EXPECT_EQ(canonical_item_key(a), "nodes=6 policy=vanilla scheduler=fifo");
}

TEST(RunFarmItem, MatchesDirectRunOnce) {
  Config item;
  item.set("profile", "cct");
  item.set("nodes", "6");
  item.set("scheduler", "fifo");
  item.set("policy", "vanilla");
  item.set("seed", "7");
  item.set("workload", "wl1");
  item.set("jobs", "25");
  const auto farm_result = run_farm_item(item);
  // Same cluster options + same workload => identical fingerprint. wl_seed
  // defaults to 1 for wl1, matching standard_wl1's own default.
  const auto direct = run_once(
      paper_defaults(net::cct_profile(6), SchedulerKind::kFifo,
                     PolicyKind::kVanilla, 7),
      standard_wl1(6, 25, 1));
  EXPECT_EQ(metrics::fingerprint(farm_result), metrics::fingerprint(direct));
}

TEST(FarmRowMetric, RoundTripsAndRejectsUnknownColumns) {
  Config item;
  item.set("nodes", "6");
  item.set("jobs", "25");
  item.set("seed", "7");
  const auto result = run_farm_item(item);
  FarmResult fr;
  fr.row = make_farm_row(result);
  ASSERT_EQ(fr.row.values.size(), farm_columns().size());
  // The row's shortest-round-trip rendering parses back to the exact
  // double the simulation produced.
  EXPECT_EQ(fr.metric("locality"), result.locality);
  EXPECT_EQ(fr.metric("makespan_s"), to_seconds(result.makespan));
  EXPECT_THROW(fr.metric("no_such_column"), std::out_of_range);
}

TEST(Journal, LineRoundTripsIncludingEscapes) {
  JournalEntry entry;
  entry.key = "nodes=6 note=\"quoted\\slash\" policy=vanilla";
  entry.fingerprint = 0xdeadbeefcafef00dULL;
  entry.row.values.assign(farm_columns().size(), "0");
  entry.row.values[0] = "0.8571428571428571";
  const auto line = journal_line(entry);
  JournalEntry parsed;
  ASSERT_TRUE(parse_journal_line(line, &parsed));
  EXPECT_EQ(parsed.key, entry.key);
  EXPECT_EQ(parsed.fingerprint, entry.fingerprint);
  EXPECT_EQ(parsed.row.values, entry.row.values);
}

TEST(Journal, TruncatedPrefixesAllFailParse) {
  JournalEntry entry;
  entry.key = "nodes=6";
  entry.fingerprint = 42;
  entry.row.values.assign(farm_columns().size(), "1.5");
  const auto line = journal_line(entry);
  // Every proper prefix is a torn write and must be rejected, never
  // misparsed into a bogus entry.
  JournalEntry parsed;
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(parse_journal_line(line.substr(0, len), &parsed))
        << "prefix of length " << len << " parsed unexpectedly";
  }
  ASSERT_TRUE(parse_journal_line(line, &parsed));
}

TEST(Journal, ReadStopsAtTornTail) {
  const std::string path = temp_path("dare_farm_torn.jsonl");
  JournalEntry entry;
  entry.key = "nodes=6";
  entry.fingerprint = 1;
  entry.row.values.assign(farm_columns().size(), "2");
  const auto good = journal_line(entry);
  {
    std::ofstream out(path, std::ios::trunc);
    out << good << '\n' << good << '\n'
        << good.substr(0, good.size() / 2);  // torn final line
  }
  const auto entries = read_journal(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "nodes=6");
  std::remove(path.c_str());
  // Missing file: empty journal, not an error.
  EXPECT_TRUE(read_journal(path).empty());
}

TEST(ExperimentFarm, DuplicateItemKeysThrow) {
  Config item;
  item.set("nodes", "6");
  std::vector<Config> items = {item, item};
  EXPECT_THROW(ExperimentFarm farm(std::move(items)), std::invalid_argument);
}

TEST(ExperimentFarm, ParallelMatchesSerialFingerprints) {
  const auto items = expand_grid(small_grid());

  ExperimentFarm::Options serial_options;
  serial_options.threads = 1;
  serial_options.max_in_flight = 1;
  ExperimentFarm serial(items, serial_options);
  const auto serial_results = serial.run();

  ExperimentFarm::Options parallel_options;
  parallel_options.threads = 4;
  ExperimentFarm parallel(items, parallel_options);
  const auto parallel_results = parallel.run();

  ASSERT_EQ(serial_results.size(), items.size());
  ASSERT_EQ(parallel_results.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(serial_results[i].index, i);
    EXPECT_EQ(serial_results[i].key, canonical_item_key(items[i]));
    EXPECT_EQ(serial_results[i].fingerprint, parallel_results[i].fingerprint);
    EXPECT_EQ(serial_results[i].row.values, parallel_results[i].row.values);
    // Each item's result equals a standalone run of the same Config.
    EXPECT_EQ(serial_results[i].fingerprint,
              metrics::fingerprint(run_farm_item(items[i])));
  }

  std::ostringstream serial_csv, parallel_csv;
  ExperimentFarm::write_csv(serial_results, serial_csv);
  ExperimentFarm::write_csv(parallel_results, parallel_csv);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

TEST(ExperimentFarm, ResumeFromTruncatedJournalIsByteIdentical) {
  const std::string path = temp_path("dare_farm_resume.jsonl");
  std::remove(path.c_str());
  const auto items = expand_grid(small_grid());

  ExperimentFarm::Options options;
  options.threads = 2;
  options.journal_path = path;

  // Full run writes one journal line per item.
  ExperimentFarm full(items, options);
  const auto full_results = full.run();
  ASSERT_EQ(full_results.size(), 4u);
  for (const auto& result : full_results) {
    EXPECT_FALSE(result.from_journal);
  }

  // Simulate a kill after two completions: truncate the journal to its
  // first two lines.
  {
    std::ifstream in(path);
    std::string line1, line2;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line1)));
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line2)));
    std::ofstream out(path, std::ios::trunc);
    out << line1 << '\n' << line2 << '\n';
  }

  // Resume: two items replay from the journal, two run fresh.
  std::size_t replayed_progress = 0;
  options.progress = [&replayed_progress](std::size_t done, std::size_t) {
    if (replayed_progress == 0) replayed_progress = done;
  };
  ExperimentFarm resumed(items, options);
  const auto resumed_results = resumed.run();
  ASSERT_EQ(resumed_results.size(), 4u);
  EXPECT_EQ(replayed_progress, 2u);  // first progress call reports replays
  std::size_t from_journal = 0;
  for (const auto& result : resumed_results) {
    from_journal += result.from_journal ? 1 : 0;
  }
  EXPECT_EQ(from_journal, 2u);

  // Merged outputs are byte-identical to the uninterrupted run's.
  std::ostringstream full_csv, resumed_csv, full_json, resumed_json;
  ExperimentFarm::write_csv(full_results, full_csv);
  ExperimentFarm::write_csv(resumed_results, resumed_csv);
  ExperimentFarm::write_json(full_results, full_json);
  ExperimentFarm::write_json(resumed_results, resumed_json);
  EXPECT_EQ(full_csv.str(), resumed_csv.str());
  EXPECT_EQ(full_json.str(), resumed_json.str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dare::cluster
