#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace dare::sim {
namespace {

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.at(100, [&] { seen.push_back(sim.now()); });
  sim.at(200, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{100, 200}));
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  SimTime fired = -1;
  sim.at(50, [&] {
    sim.after(25, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 75);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  SimTime fired = -1;
  sim.at(10, [&] {
    sim.after(-5, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), std::invalid_argument);
}

TEST(Simulation, RunUntilHorizonStopsAndResumes) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.at(10, [&] { seen.push_back(10); });
  sim.at(20, [&] { seen.push_back(20); });
  sim.at(30, [&] { seen.push_back(30); });
  EXPECT_EQ(sim.run(20), 2u);  // events at exactly the horizon still run
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(seen.back(), 30);
}

TEST(Simulation, RunAdvancesClockToHorizonWhenDrained) {
  Simulation sim;
  sim.at(5, [] {});
  sim.run(100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulation, StepExecutesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.at(1, [&] { ++count; });
  sim.at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, StopDropsPendingEvents) {
  Simulation sim;
  int count = 0;
  sim.at(10, [&] {
    ++count;
    sim.stop();
  });
  sim.at(20, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, ExecutedEventsCounter) {
  Simulation sim;
  for (int i = 1; i <= 5; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulation, CallbackObservesItsOwnTimestamp) {
  Simulation sim;
  std::vector<SimTime> observed;
  sim.at(7, [&] { observed.push_back(sim.now()); });
  sim.at(7, [&] { observed.push_back(sim.now()); });
  sim.at(9, [&] { observed.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(observed, (std::vector<SimTime>{7, 7, 9}));
}

TEST(Simulation, CancelFromWithinCallback) {
  Simulation sim;
  bool second_ran = false;
  EventHandle second;
  sim.at(5, [&] { second.cancel(); });
  second = sim.at(10, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(sim.now(), 5);
}

TEST(Simulation, SchedulingAtNowFromCallbackRunsSameTime) {
  Simulation sim;
  std::vector<int> order;
  sim.at(5, [&] {
    order.push_back(1);
    sim.at(5, [&] { order.push_back(2); });  // same timestamp, runs after
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 5);
}

TEST(Simulation, RepeatingEventChainTerminates) {
  Simulation sim;
  int fires = 0;
  // Self-rescheduling heartbeat with a termination condition.
  std::function<void()> beat = [&] {
    if (++fires < 10) sim.after(3, beat);
  };
  sim.after(3, beat);
  sim.run();
  EXPECT_EQ(fires, 10);
  EXPECT_EQ(sim.now(), 30);
}

}  // namespace
}  // namespace dare::sim
