#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace dare::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  EXPECT_EQ(q.next_time(), 10);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampFiresInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(123, [] {});
  EXPECT_EQ(q.pop_and_run(), 123);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  auto handle = q.schedule(10, [] {});
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, CancelledEventSkippedAmongLive) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] { fired.push_back(1); });
  auto handle = q.schedule(20, [&] { fired.push_back(2); });
  q.schedule(30, [&] { fired.push_back(3); });
  handle.cancel();
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, HandleNotPendingAfterFire) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  q.pop_and_run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] {
    fired.push_back(1);
    q.schedule(20, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  bool ran = false;
  q.schedule(10, [&] { ran = true; });
  q.schedule(20, [&] { ran = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, RejectsInvalidScheduling) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(1, nullptr), std::invalid_argument);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop_and_run(), std::logic_error);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.schedule(1, [] {});
  auto h2 = q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  h1.cancel();
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
  (void)h2;
}

TEST(EventQueue, StaleHandleSurvivesSlotRecycling) {
  EventQueue q;
  auto old = q.schedule(1, [] {});
  q.pop_and_run();  // slot drained and returned to the freelist
  // The next event reuses the slot; the old handle's generation no longer
  // matches and must neither report pending nor cancel the new occupant.
  bool ran = false;
  auto fresh = q.schedule(2, [&] { ran = true; });
  EXPECT_FALSE(old.pending());
  EXPECT_FALSE(old.cancel());
  EXPECT_TRUE(fresh.pending());
  q.pop_and_run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, StaleHandleSafeAfterClear) {
  EventQueue q;
  auto h1 = q.schedule(10, [] {});
  auto h2 = q.schedule(20, [] {});
  h2.cancel();
  q.clear();
  EXPECT_FALSE(h1.pending());
  EXPECT_FALSE(h1.cancel());
  EXPECT_FALSE(h2.cancel());
  // The queue is reusable after clear, and old handles stay inert.
  bool ran = false;
  q.schedule(5, [&] { ran = true; });
  EXPECT_FALSE(h1.pending());
  q.pop_and_run();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, CallbackMayClearQueue) {
  // Simulation::stop() clears the queue from inside a running callback; the
  // fired slot must already be released when the callback runs.
  EventQueue q;
  bool later_ran = false;
  q.schedule(10, [&] { q.clear(); });
  q.schedule(20, [&] { later_ran = true; });
  q.pop_and_run();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, CancelledTombstoneReclaimedBySkim) {
  EventQueue q;
  auto doomed = q.schedule(5, [] {});
  q.schedule(10, [] {});
  doomed.cancel();
  // next_time() skims the cancelled top entry, recycling its record; the
  // next schedule must reuse that slot instead of growing the slab.
  EXPECT_EQ(q.next_time(), 10);
  const std::size_t slab_before = q.slab_size();
  q.schedule(15, [] {});
  EXPECT_EQ(q.slab_size(), slab_before);
}

TEST(EventQueue, MillionEventChurnKeepsSlabBounded) {
  // Regression test for tombstone leaks: schedule and cancel/fire a million
  // events in waves. The slab must stay bounded by the per-wave live peak
  // (records recycle) rather than growing with the total event count.
  constexpr std::size_t kWaves = 100;
  constexpr std::size_t kPerWave = 10000;
  EventQueue q;
  std::size_t fired = 0;
  std::size_t slab_peak = 0;
  SimTime t = 0;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    std::vector<EventHandle> handles;
    handles.reserve(kPerWave);
    for (std::size_t i = 0; i < kPerWave; ++i) {
      handles.push_back(q.schedule(++t, [&] { ++fired; }));
    }
    // Cancel every other event, fire the rest.
    for (std::size_t i = 0; i < kPerWave; i += 2) handles[i].cancel();
    while (!q.empty()) q.pop_and_run();
    slab_peak = std::max(slab_peak, q.slab_size());
  }
  EXPECT_EQ(fired, kWaves * kPerWave / 2);
  EXPECT_EQ(q.size(), 0u);
  // 1,000,000 events passed through; the slab must hold only one wave's
  // worth of records (plus nothing — every slot recycles).
  EXPECT_LE(slab_peak, kPerWave);
}

}  // namespace
}  // namespace dare::sim
