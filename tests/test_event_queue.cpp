#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dare::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  EXPECT_EQ(q.next_time(), 10);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampFiresInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(123, [] {});
  EXPECT_EQ(q.pop_and_run(), 123);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  auto handle = q.schedule(10, [] {});
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, CancelledEventSkippedAmongLive) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] { fired.push_back(1); });
  auto handle = q.schedule(20, [&] { fired.push_back(2); });
  q.schedule(30, [&] { fired.push_back(3); });
  handle.cancel();
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, HandleNotPendingAfterFire) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  q.pop_and_run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] {
    fired.push_back(1);
    q.schedule(20, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  bool ran = false;
  q.schedule(10, [&] { ran = true; });
  q.schedule(20, [&] { ran = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, RejectsInvalidScheduling) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(1, nullptr), std::invalid_argument);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop_and_run(), std::logic_error);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.schedule(1, [] {});
  auto h2 = q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  h1.cancel();
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
  (void)h2;
}

}  // namespace
}  // namespace dare::sim
