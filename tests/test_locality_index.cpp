// LocalityIndex unit tests plus a randomized equivalence oracle.
//
// The unit tests pin the incremental-maintenance contract for each event
// the index must absorb: replica create/evict, node death and rejoin
// reconciliation (via a live NameNode with the observer attached), map
// launch/requeue, and job failure. The oracle drives two JobTables through
// an identical randomized schedule — one answering from the index, one
// scanning with a BlockLocator over the same replica map — and asserts
// every single selection matches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sched/job_table.h"
#include "sched/locality_index.h"
#include "storage/namenode.h"

namespace dare::sched {
namespace {

JobSpec make_job(JobId id, const std::vector<BlockId>& blocks,
                 std::size_t reduces = 0) {
  JobSpec spec;
  spec.id = id;
  spec.reduces = reduces;
  for (BlockId b : blocks) {
    MapTaskSpec task;
    task.block = b;
    task.bytes = 1;
    spec.maps.push_back(task);
  }
  return spec;
}

/// Scan-mode oracle locator over a shared replica map.
class MapLocator final : public BlockLocator {
 public:
  MapLocator(const std::unordered_map<BlockId, std::set<NodeId>>* replicas,
             const std::vector<RackId>* node_rack)
      : replicas_(replicas), node_rack_(node_rack) {}

  bool is_local(NodeId node, BlockId block) const override {
    const auto it = replicas_->find(block);
    return it != replicas_->end() && it->second.count(node) != 0;
  }
  bool is_rack_local(NodeId node, BlockId block) const override {
    const auto it = replicas_->find(block);
    if (it == replicas_->end()) return false;
    for (NodeId holder : it->second) {
      if ((*node_rack_)[static_cast<std::size_t>(holder)] ==
          (*node_rack_)[static_cast<std::size_t>(node)]) {
        return true;
      }
    }
    return false;
  }

 private:
  const std::unordered_map<BlockId, std::set<NodeId>>* replicas_;
  const std::vector<RackId>* node_rack_;
};

/// 4 nodes in 2 racks: nodes 0,1 in rack 0; nodes 2,3 in rack 1.
class LocalityIndexTest : public ::testing::Test {
 protected:
  LocalityIndexTest() : index_(4, {0, 0, 1, 1}, 2) {}
  LocalityIndex index_;
};

TEST_F(LocalityIndexTest, RejectsBadConstruction) {
  EXPECT_THROW(LocalityIndex(0, {}, 1), std::invalid_argument);
  EXPECT_THROW(LocalityIndex(2, {0}, 1), std::invalid_argument);
  EXPECT_THROW(LocalityIndex(2, {0, 5}, 2), std::invalid_argument);
}

TEST_F(LocalityIndexTest, WatchAfterReplicaSeesExistingLocations) {
  index_.replica_added(7, 0);
  index_.replica_added(7, 2);
  index_.watch_map(1, 0, 7);
  EXPECT_EQ(index_.node_candidates(1, 0).size(), 1u);
  EXPECT_EQ(index_.node_candidates(1, 1).size(), 0u);
  EXPECT_EQ(index_.node_candidates(1, 2).size(), 1u);
  // Rack candidates: rack 0 via node 0, rack 1 via node 2.
  EXPECT_EQ(index_.rack_candidates(1, 1).size(), 1u);  // node 1 -> rack 0
  EXPECT_EQ(index_.rack_candidates(1, 3).size(), 1u);  // node 3 -> rack 1
}

TEST_F(LocalityIndexTest, ReplicaAfterWatchReachesCandidates) {
  index_.watch_map(1, 0, 7);
  EXPECT_TRUE(index_.node_candidates(1, 0).empty());
  index_.replica_added(7, 0);
  EXPECT_EQ(index_.node_candidates(1, 0).size(), 1u);
  EXPECT_EQ(index_.rack_candidates(1, 1).size(), 1u);
}

TEST_F(LocalityIndexTest, EvictionRemovesCandidateAndRackEntryAtZero) {
  index_.watch_map(1, 0, 7);
  index_.replica_added(7, 0);
  index_.replica_added(7, 1);  // second replica in rack 0
  EXPECT_EQ(index_.rack_candidates(1, 0).size(), 1u);
  index_.replica_removed(7, 0);  // rack 0 still holds one replica
  EXPECT_TRUE(index_.node_candidates(1, 0).empty());
  EXPECT_EQ(index_.node_candidates(1, 1).size(), 1u);
  EXPECT_EQ(index_.rack_candidates(1, 0).size(), 1u);
  index_.replica_removed(7, 1);  // rack is now empty
  EXPECT_TRUE(index_.rack_candidates(1, 0).empty());
  EXPECT_EQ(index_.replica_count(7), 0u);
}

TEST_F(LocalityIndexTest, UnwatchDropsAllCandidateEntries) {
  index_.replica_added(7, 0);
  index_.replica_added(7, 3);
  index_.watch_map(1, 0, 7);
  index_.watch_map(1, 1, 7);  // two maps of the same job reading block 7
  EXPECT_EQ(index_.node_candidates(1, 0).size(), 2u);
  index_.unwatch_map(1, 0, 7);
  EXPECT_EQ(index_.node_candidates(1, 0).size(), 1u);
  EXPECT_EQ(index_.node_candidates(1, 0)[0], 1u);
  EXPECT_EQ(index_.rack_candidates(1, 2).size(), 1u);
  index_.unwatch_map(1, 1, 7);
  EXPECT_TRUE(index_.node_candidates(1, 0).empty());
  EXPECT_TRUE(index_.rack_candidates(1, 2).empty());
}

TEST_F(LocalityIndexTest, JobRetirementFreesState) {
  index_.replica_added(7, 0);
  index_.watch_map(1, 0, 7);
  index_.unwatch_map(1, 0, 7);
  EXPECT_EQ(index_.tracked_job_count(), 1u);
  index_.job_retired(1);
  EXPECT_EQ(index_.tracked_job_count(), 0u);
  // Unknown jobs answer empty, not throw.
  EXPECT_TRUE(index_.node_candidates(1, 0).empty());
}

/// JobTable + index integration: the index answer must equal the legacy
/// scan at every step of a launch/requeue/fail lifecycle.
TEST(JobTableIndexTest, LaunchRequeueFailKeepCandidatesExact) {
  std::unordered_map<BlockId, std::set<NodeId>> replicas;
  std::vector<RackId> node_rack{0, 0, 1, 1};
  MapLocator locator(&replicas, &node_rack);

  LocalityIndex index(4, node_rack, 2);
  JobTable indexed;
  indexed.attach_locality_index(&index);
  JobTable scanned;

  const auto add_replica = [&](BlockId b, NodeId n) {
    replicas[b].insert(n);
    index.replica_added(b, n);
  };
  add_replica(10, 0);
  add_replica(10, 2);
  add_replica(11, 1);
  add_replica(12, 3);

  const auto spec = make_job(1, {10, 11, 12});
  indexed.add_job(spec);
  scanned.add_job(spec);

  const auto expect_equal_everywhere = [&]() {
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_EQ(indexed.find_local_map(1, n, locator),
                scanned.find_local_map(1, n, locator))
          << "local divergence on node " << n;
      EXPECT_EQ(indexed.find_rack_local_map(1, n, locator),
                scanned.find_rack_local_map(1, n, locator))
          << "rack divergence on node " << n;
    }
  };
  expect_equal_everywhere();

  // Launch the map local to node 0 in both tables.
  const auto sel = indexed.find_local_map(1, 0, locator);
  ASSERT_TRUE(sel.has_value());
  const std::size_t launched =
      indexed.launch_map(1, *sel, Locality::kNodeLocal);
  EXPECT_EQ(scanned.launch_map(1, *sel, Locality::kNodeLocal), launched);
  expect_equal_everywhere();
  EXPECT_FALSE(indexed.find_local_map(1, 0, locator).has_value());

  // Node death drops the replica; requeue puts the map back.
  replicas[10].erase(2);
  index.replica_removed(10, 2);
  indexed.requeue_running_map(1, launched, Locality::kNodeLocal);
  scanned.requeue_running_map(1, launched, Locality::kNodeLocal);
  expect_equal_everywhere();
  EXPECT_TRUE(indexed.find_local_map(1, 0, locator).has_value());
  EXPECT_FALSE(indexed.find_local_map(1, 2, locator).has_value());

  // Job failure drops every pending map from the index.
  indexed.fail_job(1, 100);
  scanned.fail_job(1, 100);
  EXPECT_TRUE(index.node_candidates(1, 0).empty());
  EXPECT_EQ(index.tracked_job_count(), 0u);
}

/// NameNode-driven reconciliation: the observer stream through death,
/// rejoin (with re-adoption and pruning), dynamic reports, and repair
/// copies keeps the index mirror identical to locations().
TEST(LocalityIndexNameNodeTest, ObserverMirrorsEveryTransition) {
  Rng rng(99);
  storage::NameNode nn(4, nullptr, rng);
  LocalityIndex index(4, {0, 0, 1, 1}, 2);
  nn.set_replica_observer([&](BlockId b, NodeId n, bool added) {
    if (added) {
      index.replica_added(b, n);
    } else {
      index.replica_removed(b, n);
    }
  });

  const auto expect_mirrored = [&]() {
    for (FileId fid : nn.all_files()) {
      for (BlockId bid : nn.file(fid).blocks) {
        const auto& locs = nn.locations(bid);
        ASSERT_EQ(index.replica_count(bid), locs.size()) << "block " << bid;
        for (NodeId n : locs) {
          EXPECT_TRUE(index.mirrors_replica(bid, n))
              << "block " << bid << " node " << n;
        }
      }
    }
  };

  const FileId fid = nn.create_file("f", 3, 1024, 2, 0);
  expect_mirrored();
  const BlockId b0 = nn.file(fid).blocks[0];

  // Dynamic replica lifecycle on a node that does not hold b0 statically.
  NodeId dyn_node = kInvalidNode;
  for (NodeId n = 0; n < 4; ++n) {
    const auto& locs = nn.locations(b0);
    if (std::find(locs.begin(), locs.end(), n) == locs.end()) {
      dyn_node = n;
      break;
    }
  }
  ASSERT_NE(dyn_node, kInvalidNode);
  nn.report_dynamic_added(dyn_node, {b0});
  nn.report_dynamic_added(dyn_node, {b0});  // duplicate: no delta
  expect_mirrored();
  nn.report_dynamic_removed(dyn_node, {b0});
  nn.report_dynamic_removed(dyn_node, {b0});  // missing: no delta
  expect_mirrored();

  // Death drops every replica on the victim from the mirror.
  const NodeId victim = nn.locations(b0).front();
  std::vector<BlockId> victim_statics;
  for (FileId f : nn.all_files()) {
    for (BlockId b : nn.file(f).blocks) {
      const auto& statics = nn.static_locations(b);
      if (std::find(statics.begin(), statics.end(), victim) !=
          statics.end()) {
        victim_statics.push_back(b);
      }
    }
  }
  nn.node_failed(victim);
  expect_mirrored();
  EXPECT_FALSE(index.mirrors_replica(b0, victim));

  // Repair one block, then rejoin: the repaired block's stale copy is
  // pruned (no delta), the rest are re-adopted (delta per block).
  NodeId repair_node = kInvalidNode;
  for (NodeId n = 0; n < 4; ++n) {
    if (n == victim || !nn.is_node_alive(n)) continue;
    const auto& locs = nn.locations(b0);
    if (std::find(locs.begin(), locs.end(), n) == locs.end()) {
      repair_node = n;
      break;
    }
  }
  ASSERT_NE(repair_node, kInvalidNode);
  ASSERT_TRUE(nn.add_repair_replica(b0, repair_node));
  expect_mirrored();

  const auto report = nn.node_rejoined(victim, victim_statics, {});
  expect_mirrored();
  EXPECT_EQ(report.pruned_static.size(), 1u);
  EXPECT_EQ(report.pruned_static[0], b0);
  EXPECT_FALSE(index.mirrors_replica(b0, victim));
}

/// Randomized oracle: an indexed table and a scanning table driven through
/// the same schedule must make the same selection at every opportunity.
TEST(LocalityIndexOracleTest, RandomizedScheduleSelectsIdentically) {
  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kRacks = 3;
  constexpr std::size_t kBlocks = 40;
  constexpr int kSteps = 4000;

  std::vector<RackId> node_rack(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    node_rack[n] = static_cast<RackId>(n % kRacks);
  }
  std::unordered_map<BlockId, std::set<NodeId>> replicas;
  MapLocator locator(&replicas, &node_rack);

  LocalityIndex index(kNodes, node_rack, kRacks);
  JobTable indexed;
  indexed.attach_locality_index(&index);
  JobTable scanned;

  Rng rng(4242);
  JobId next_job = 0;
  std::vector<JobId> live_jobs;
  // Launched (job, map_index) pairs eligible for requeue/complete.
  std::vector<std::pair<JobId, std::size_t>> running;

  const auto random_block = [&]() {
    return static_cast<BlockId>(rng.uniform_int(0, kBlocks - 1));
  };
  const auto random_node = [&]() {
    return static_cast<NodeId>(
        rng.uniform_int(0, static_cast<int>(kNodes) - 1));
  };

  for (int step = 0; step < kSteps; ++step) {
    const int action = rng.uniform_int(0, 9);
    if (action <= 1) {  // add/remove a replica
      const BlockId b = random_block();
      const NodeId n = random_node();
      if (replicas[b].count(n)) {
        replicas[b].erase(n);
        index.replica_removed(b, n);
      } else {
        replicas[b].insert(n);
        index.replica_added(b, n);
      }
    } else if (action == 2 && live_jobs.size() < 12) {  // new job
      std::vector<BlockId> blocks;
      const int maps = rng.uniform_int(1, 6);
      for (int m = 0; m < maps; ++m) blocks.push_back(random_block());
      const auto spec = make_job(next_job, blocks);
      indexed.add_job(spec);
      scanned.add_job(spec);
      live_jobs.push_back(next_job);
      ++next_job;
    } else if (action == 3 && !running.empty()) {  // requeue a running map
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(running.size()) - 1));
      const auto [job, mi] = running[pick];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(pick));
      indexed.requeue_running_map(job, mi, Locality::kOffRack);
      scanned.requeue_running_map(job, mi, Locality::kOffRack);
    } else if (action == 4 && !running.empty()) {  // complete a running map
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(running.size()) - 1));
      const auto [job, mi] = running[pick];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(pick));
      indexed.complete_map(job, step);
      scanned.complete_map(job, step);
      if (!indexed.has_job(job) || !indexed.job(job).active) {
        live_jobs.erase(
            std::find(live_jobs.begin(), live_jobs.end(), job));
      }
    } else if (action == 5 && !live_jobs.empty() &&
               rng.uniform_int(0, 19) == 0) {  // rare: kill a job
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_jobs.size()) - 1));
      const JobId job = live_jobs[pick];
      indexed.fail_job(job, step);
      scanned.fail_job(job, step);
      live_jobs.erase(live_jobs.begin() + static_cast<std::ptrdiff_t>(pick));
      for (std::size_t r = running.size(); r-- > 0;) {
        if (running[r].first == job) {
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(r));
        }
      }
    } else if (!live_jobs.empty()) {  // scheduling opportunity
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_jobs.size()) - 1));
      const JobId job = live_jobs[pick];
      const NodeId node = random_node();

      const auto local_a = indexed.find_local_map(job, node, locator);
      const auto local_b = scanned.find_local_map(job, node, locator);
      ASSERT_EQ(local_a, local_b)
          << "local divergence at step " << step << " job " << job
          << " node " << node;
      const auto rack_a = indexed.find_rack_local_map(job, node, locator);
      const auto rack_b = scanned.find_rack_local_map(job, node, locator);
      ASSERT_EQ(rack_a, rack_b)
          << "rack divergence at step " << step << " job " << job << " node "
          << node;

      const auto chosen = local_a ? local_a : rack_a;
      if (chosen) {
        const std::size_t launched = indexed.launch_map(
            job, *chosen,
            local_a ? Locality::kNodeLocal : Locality::kRackLocal);
        const std::size_t launched_b = scanned.launch_map(
            job, *chosen,
            local_a ? Locality::kNodeLocal : Locality::kRackLocal);
        ASSERT_EQ(launched, launched_b);
        running.emplace_back(job, launched);
      }
    }
  }
}

TEST(CandidateMapTest, DirectAndSparseLayoutsAnswerIdentically) {
  // The two layouts behind CandidateMap must be observationally identical:
  // drive one direct-mode and one sparse-mode map through the same
  // randomized mutation schedule and compare every slot's list afterwards
  // (and at checkpoints along the way).
  constexpr std::uint32_t kDomain = 64;
  CandidateMap direct;
  direct.reserve_domain(kDomain);
  CandidateMap sparse;
  sparse.reserve_slots(8);  // deliberately small: forces rehash chains

  ASSERT_TRUE(direct.direct());
  ASSERT_FALSE(sparse.direct());

  Rng rng(777);
  for (int step = 0; step < 5000; ++step) {
    const auto slot = static_cast<std::uint32_t>(rng.uniform_int(kDomain));
    if (rng.uniform_int(3) != 0) {
      const auto value = static_cast<std::uint32_t>(rng.uniform_int(1000));
      direct.slot_mut(slot).push_back(value);
      sparse.slot_mut(slot).push_back(value);
    } else {
      auto& d = direct.slot_mut(slot);
      auto& s = sparse.slot_mut(slot);
      ASSERT_EQ(d.size(), s.size());
      if (!d.empty()) {
        d.pop_back();
        s.pop_back();
      }
    }
    if (step % 500 == 0) {
      for (std::uint32_t k = 0; k < kDomain; ++k) {
        ASSERT_EQ(direct.find(k), sparse.find(k)) << "slot " << k;
      }
      ASSERT_EQ(direct.used(), sparse.used());
    }
  }
  for (std::uint32_t k = 0; k < kDomain; ++k) {
    EXPECT_EQ(direct.find(k), sparse.find(k)) << "slot " << k;
  }
  EXPECT_EQ(direct.all_empty(), sparse.all_empty());
}

TEST(CandidateMapTest, FindOnAbsentSlotReturnsEmpty) {
  CandidateMap sparse;
  EXPECT_TRUE(sparse.find(7).empty());  // empty table, no probe loop
  sparse.slot_mut(3).push_back(1);
  EXPECT_TRUE(sparse.find(7).empty());
  EXPECT_EQ(sparse.find(3).size(), 1u);

  CandidateMap direct;
  direct.reserve_domain(16);
  EXPECT_TRUE(direct.find(7).empty());
  EXPECT_EQ(direct.used(), 0u);  // find never inserts
}

}  // namespace
}  // namespace dare::sched
