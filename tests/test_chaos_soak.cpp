// Chaos soak: randomized stochastic fault schedules (mixed transient,
// permanent, and rack-correlated failures plus injected task failures)
// across every scheduler x policy combination. Every run must finish with
// every job terminally accounted, pass the full cross-component validation,
// never violate a DARE_INVARIANT (a throwing handler is installed), and
// never lose a block that still had a surviving replica.
//
// A second suite layers silent data corruption (bit rot + latent sector
// loss) on top of the churn and additionally audits the integrity pipeline
// (detection, quarantine, repair, last-good-replica protection).
//
// A third suite adds degraded-mode nodes and heavy-tailed task inflation on
// top of churn + corruption, with the full mitigation stack armed
// (straggler detection, budgeted cloning, speculation), and audits the
// clone ledger and degrade-episode ordering.
//
// A fourth suite adds network faults — stochastic rack partitions and
// degraded inter-rack uplinks — on top of churn + corruption, and audits
// the partition lifecycle (every heal matches an episode) and the repair
// ledger (every first-time enqueue terminally lands or is abandoned).
//
// 24 runs per suite = 4 seeds x {FIFO, Fair} x {Vanilla, GreedyLRU,
// ElephantTrap}. The nightly CI job extends the seed list via the
// DARE_SOAK_SEEDS environment variable (number of extra seeds to append);
// failing runs print their scheduler/policy/seed triple in the assertion
// message, so a red soak is reproducible locally with --gtest_filter.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/experiment.h"
#include "common/invariant.h"
#include "metrics/run_metrics.h"
#include "net/profile.h"

namespace dare::cluster {
namespace {

[[noreturn]] void throwing_handler(const InvariantViolation& v) {
  throw std::logic_error("invariant violated: " + v.message);
}

class ThrowOnInvariant {
 public:
  ThrowOnInvariant() : previous_(set_invariant_handler(&throwing_handler)) {}
  ~ThrowOnInvariant() { set_invariant_handler(previous_); }

 private:
  InvariantHandler previous_;
};

struct SoakTotals {
  std::uint64_t runs = 0;
  std::uint64_t node_failures = 0;
  std::uint64_t transient = 0;
  std::uint64_t permanent = 0;
  std::uint64_t detected = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t attempt_failures = 0;
};

SoakTotals& totals() {
  static SoakTotals t;
  return t;
}

/// Soak seeds: four fixed ones for CI's smoke slice, plus DARE_SOAK_SEEDS
/// extra ones for the scheduled long soak (the nightly job sets it to a
/// count; seeds are derived deterministically so any failure reproduces).
std::vector<std::uint64_t> soak_seeds() {
  std::vector<std::uint64_t> seeds = {101, 202, 303, 404};
  if (const char* extra = std::getenv("DARE_SOAK_SEEDS")) {
    const long n = std::strtol(extra, nullptr, 10);
    for (long i = 0; i < n; ++i) {
      seeds.push_back(1000u + 97u * static_cast<std::uint64_t>(i));
    }
  }
  return seeds;
}

workload::Workload soak_workload(std::uint64_t seed) {
  workload::WorkloadOptions opts;
  opts.num_jobs = 50;
  opts.seed = seed;
  opts.catalog.small_files = 16;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 5;
  opts.catalog.large_max_blocks = 8;
  return workload::make_wl1(opts);
}

ClusterOptions soak_options(SchedulerKind scheduler, PolicyKind policy,
                            std::uint64_t seed) {
  // ec2_profile: multi-rack, so rack-correlated failures actually take
  // whole racks down.
  auto opts = paper_defaults(net::ec2_profile(10), scheduler, policy, seed);
  opts.faults.enabled = true;
  opts.faults.mtbf_s = 60.0;
  opts.faults.mttr_s = 20.0;
  opts.faults.permanent_fraction = 0.25;
  opts.faults.rack_correlation = 0.3;
  opts.faults.task_failure_prob = 0.01;
  opts.faults.min_live_workers = 4;
  opts.rereplication_interval = from_seconds(2.0);
  opts.rereplication_batch = 32;
  return opts;
}

using SoakParam = std::tuple<SchedulerKind, PolicyKind, std::uint64_t>;

class ChaosSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(ChaosSoak, RandomChurnScheduleSurvives) {
  ThrowOnInvariant guard;
  const auto [scheduler, policy, seed] = GetParam();
  const auto opts = soak_options(scheduler, policy, seed);
  const auto wl = soak_workload(seed);

  Cluster cluster(opts);
  metrics::RunResult result;
  ASSERT_NO_THROW(result = cluster.run(wl))
      << scheduler_name(scheduler) << "/" << policy_name(policy) << " seed "
      << seed;

  // Every job is terminally accounted: completed or cleanly failed, never
  // dangling.
  ASSERT_EQ(result.jobs.size(), wl.jobs.size());
  std::size_t failed = 0;
  for (const auto& jm : result.jobs) {
    EXPECT_GE(jm.completion, jm.arrival);
    if (jm.failed) ++failed;
  }
  EXPECT_EQ(failed, result.failed_jobs);

  // Full cross-component consistency after the dust settles.
  EXPECT_NO_THROW(cluster.validate());

  // Zero lost blocks while a replica survives: a block may only be counted
  // lost if no live node physically holds a copy.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      if (!nn.locations(bid).empty()) continue;  // not lost
      for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
        if (!nn.is_node_alive(static_cast<NodeId>(w))) continue;
        EXPECT_FALSE(cluster.data_node(w).has_any_copy(bid))
            << "block " << bid << " reported lost but alive on node " << w;
      }
    }
  }

  // Replication budgets hold on every live node.
  if (policy != PolicyKind::kVanilla) {
    for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
      EXPECT_LE(cluster.data_node(w).dynamic_bytes(),
                cluster.node_budget_bytes());
    }
  }

  // Detection accounting is sane: every detection corresponds to a failure
  // and took at least K-1 heartbeat intervals (a node may die right after
  // beating, never right before being declared).
  EXPECT_LE(result.failures_detected, result.node_failures);
  EXPECT_GE(result.detection_latency_total_s,
            static_cast<double>(result.failures_detected) * 2.0 * 3.0);
  EXPECT_LE(result.node_rejoins,
            result.transient_failures + result.failures_detected);
  EXPECT_EQ(result.node_failures,
            result.transient_failures + result.permanent_failures);

  auto& t = totals();
  ++t.runs;
  t.node_failures += result.node_failures;
  t.transient += result.transient_failures;
  t.permanent += result.permanent_failures;
  t.detected += result.failures_detected;
  t.rejoins += result.node_rejoins;
  t.attempt_failures += result.task_attempt_failures;
}

std::vector<SoakParam> soak_params() {
  std::vector<SoakParam> params;
  for (const auto scheduler : {SchedulerKind::kFifo, SchedulerKind::kFair}) {
    for (const auto policy : {PolicyKind::kVanilla, PolicyKind::kGreedyLru,
                              PolicyKind::kElephantTrap}) {
      for (std::uint64_t seed : soak_seeds()) {
        params.emplace_back(scheduler, policy, seed);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Schedules, ChaosSoak,
                         ::testing::ValuesIn(soak_params()));

// --- corruption soak -------------------------------------------------------
// Same randomized churn, plus silent corruption: per-read bit rot and
// latent sector loss. Every run must additionally keep the integrity
// pipeline honest — quarantined replicas invisible, repairs restoring
// replication, and the last copy of a block never deleted.

struct CorruptionTotals {
  std::uint64_t runs = 0;
  std::uint64_t corrupt_replicas = 0;
  std::uint64_t corrupt_reads = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t repaired = 0;
  std::uint64_t data_loss = 0;
};

CorruptionTotals& corruption_totals() {
  static CorruptionTotals t;
  return t;
}

ClusterOptions corruption_soak_options(SchedulerKind scheduler,
                                       PolicyKind policy,
                                       std::uint64_t seed) {
  auto opts = soak_options(scheduler, policy, seed);
  opts.corruption.enabled = true;
  opts.corruption.bitrot_per_gb = 1.0;
  opts.corruption.sector_mtbf_s = 45.0;
  return opts;
}

class CorruptionSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(CorruptionSoak, ChurnPlusCorruptionSurvives) {
  ThrowOnInvariant guard;
  const auto [scheduler, policy, seed] = GetParam();
  const auto opts = corruption_soak_options(scheduler, policy, seed);
  const auto wl = soak_workload(seed);

  Cluster cluster(opts);
  metrics::RunResult result;
  ASSERT_NO_THROW(result = cluster.run(wl))
      << scheduler_name(scheduler) << "/" << policy_name(policy) << " seed "
      << seed;

  // Terminal accounting and cross-component consistency, as in ChaosSoak.
  ASSERT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) EXPECT_GE(jm.completion, jm.arrival);
  EXPECT_NO_THROW(cluster.validate());

  // Integrity accounting is internally consistent: every quarantine came
  // from a checksum-failed read or a rejoin scrub of an already-corrupt
  // copy, and repairs only happen for quarantine/death-induced holes.
  EXPECT_LE(result.replicas_quarantined,
            result.corrupt_replicas + result.corrupt_reads);
  if (result.rereplicated_blocks > 0) {
    EXPECT_GT(result.mean_repair_latency_s, 0.0);
  }

  // Last-good-replica protection, globally: a block the name node still
  // advertises must have a physical copy wherever the advertised holder is
  // alive; a block advertised nowhere may only have copies on dead nodes.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      if (!nn.locations(bid).empty()) continue;
      for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
        if (!nn.is_node_alive(static_cast<NodeId>(w))) continue;
        EXPECT_FALSE(cluster.data_node(w).has_any_copy(bid))
            << "block " << bid << " unadvertised but alive on node " << w
            << " (" << scheduler_name(scheduler) << "/"
            << policy_name(policy) << " seed " << seed << ")";
      }
    }
  }

  auto& t = corruption_totals();
  ++t.runs;
  t.corrupt_replicas += result.corrupt_replicas;
  t.corrupt_reads += result.corrupt_reads;
  t.quarantined += result.replicas_quarantined;
  t.repaired += result.rereplicated_blocks;
  t.data_loss += result.data_loss_events;
}

INSTANTIATE_TEST_SUITE_P(Schedules, CorruptionSoak,
                         ::testing::ValuesIn(soak_params()));

// Forced last-good-replica scenario under churn: every replica of block 0
// is struck at once, so detection must quarantine down to — and then
// protect — the final corrupt copy, while stochastic failures rage on.
TEST(CorruptionSoakLastReplica, QuarantineNeverDeletesFinalCopy) {
  ThrowOnInvariant guard;
  for (std::uint64_t seed : {606u, 707u, 808u}) {
    auto opts = soak_options(SchedulerKind::kFair, PolicyKind::kElephantTrap,
                             seed);
    opts.corruption_events.push_back(
        {from_seconds(0.5), BlockId{0}, kInvalidNode});

    // Every job reads the single block 0, so the corrupt copies are
    // discovered early and repeatedly.
    workload::Workload wl;
    wl.name = "one-block-soak";
    wl.catalog.push_back({"f0", 1});
    for (std::size_t i = 0; i < 12; ++i) {
      workload::JobTemplate job;
      job.arrival = from_seconds(1.0 + 2.0 * static_cast<double>(i));
      job.map_cpu = from_seconds(1.0);
      job.reduce_cpu = from_seconds(0.2);
      wl.jobs.push_back(job);
    }

    Cluster cluster(opts);
    metrics::RunResult result;
    ASSERT_NO_THROW(result = cluster.run(wl)) << "seed " << seed;
    ASSERT_EQ(result.jobs.size(), wl.jobs.size());
    EXPECT_NO_THROW(cluster.validate());

    // All three copies were struck; the loss was surfaced, and quarantine
    // stopped short of the final copy.
    EXPECT_EQ(result.corrupt_replicas, 3u) << "seed " << seed;
    EXPECT_GE(result.data_loss_events, 1u) << "seed " << seed;

    const auto& nn = cluster.name_node();
    std::size_t copies = 0;
    for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
      if (cluster.data_node(w).has_any_copy(0)) ++copies;
    }
    if (!nn.locations(0).empty()) {
      // The advertised final copy physically exists: quarantine never
      // deleted it, no matter how often its bad checksum was re-reported.
      EXPECT_GE(copies, 1u) << "seed " << seed;
    } else {
      // Only a node death may take the final copy off the books — any
      // surviving physical copy must belong to a currently-dead node.
      for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
        if (cluster.data_node(w).has_any_copy(0)) {
          EXPECT_FALSE(nn.is_node_alive(static_cast<NodeId>(w)))
              << "seed " << seed << " node " << w;
        }
      }
    }
  }
}

// --- straggler soak --------------------------------------------------------
// The full storm: stochastic churn, silent corruption, degraded-mode nodes,
// and heavy-tailed task inflation — with the whole mitigation stack armed
// (progress-rate straggler detection, budgeted task cloning, speculation).
// Clone accounting must balance exactly even when node deaths, job kills,
// and zombie attempts interleave with the clone races.

struct StragglerTotals {
  std::uint64_t runs = 0;
  std::uint64_t onsets = 0;
  std::uint64_t inflations = 0;
  std::uint64_t detections = 0;
  std::uint64_t clones = 0;
  std::uint64_t clone_wins = 0;
};

StragglerTotals& straggler_totals() {
  static StragglerTotals t;
  return t;
}

ClusterOptions straggler_soak_options(SchedulerKind scheduler,
                                      PolicyKind policy, std::uint64_t seed) {
  auto opts = corruption_soak_options(scheduler, policy, seed);
  opts.stragglers.enabled = true;
  opts.stragglers.degrade_mtbf_s = 50.0;
  opts.stragglers.degrade_duration_s = 25.0;
  opts.stragglers.compute_slowdown = 4.0;
  opts.stragglers.disk_slowdown = 2.5;
  opts.stragglers.rack_correlation = 0.3;
  opts.stragglers.tail_prob = 0.1;
  opts.stragglers.tail_alpha = 1.2;
  opts.stragglers.tail_cap = 8.0;
  opts.enable_straggler_detection = true;
  opts.straggler_detect_min_samples = 2;
  opts.straggler_backoff = from_seconds(15.0);
  opts.enable_task_cloning = true;
  opts.clone_budget_fraction = 0.15;
  opts.enable_speculation = true;
  return opts;
}

class StragglerSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(StragglerSoak, ChurnCorruptionAndStragglersSurvive) {
  ThrowOnInvariant guard;
  const auto [scheduler, policy, seed] = GetParam();
  const auto opts = straggler_soak_options(scheduler, policy, seed);
  const auto wl = soak_workload(seed);

  Cluster cluster(opts);
  metrics::RunResult result;
  ASSERT_NO_THROW(result = cluster.run(wl))
      << scheduler_name(scheduler) << "/" << policy_name(policy) << " seed "
      << seed;

  // Terminal accounting: every job completed or cleanly failed.
  ASSERT_EQ(result.jobs.size(), wl.jobs.size());
  std::size_t failed = 0;
  for (const auto& jm : result.jobs) {
    EXPECT_GE(jm.completion, jm.arrival);
    if (jm.failed) ++failed;
  }
  EXPECT_EQ(failed, result.failed_jobs);

  // Cross-component consistency — includes the clone-count invariant and
  // the all-slots-returned check.
  EXPECT_NO_THROW(cluster.validate());

  // Clone ledger balances exactly: a clone either won its race or was
  // killed (by the race, a node death sweep, or its job failing) — never
  // both, never neither.
  EXPECT_EQ(result.clone_wins + result.clones_killed, result.clones_launched);
  EXPECT_LE(result.clone_wins, result.clones_launched);

  // Degrade episodes open and close in order.
  EXPECT_LE(result.degraded_recoveries, result.degraded_onsets);
  EXPECT_LE(result.straggler_readmissions, result.stragglers_detected);

  // Block conservation still holds under the combined storm.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      if (!nn.locations(bid).empty()) continue;
      for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
        if (!nn.is_node_alive(static_cast<NodeId>(w))) continue;
        EXPECT_FALSE(cluster.data_node(w).has_any_copy(bid))
            << "block " << bid << " reported lost but alive on node " << w
            << " (" << scheduler_name(scheduler) << "/"
            << policy_name(policy) << " seed " << seed << ")";
      }
    }
  }

  auto& t = straggler_totals();
  ++t.runs;
  t.onsets += result.degraded_onsets;
  t.inflations += result.tail_inflations;
  t.detections += result.stragglers_detected;
  t.clones += result.clones_launched;
  t.clone_wins += result.clone_wins;
}

INSTANTIATE_TEST_SUITE_P(Schedules, StragglerSoak,
                         ::testing::ValuesIn(soak_params()));

// --- network-fault soak ----------------------------------------------------
// Churn + corruption + network faults: stochastic rack partitions (lost
// heartbeats, false-positive declarations, heal-time re-registration) and
// degraded inter-rack uplinks, with the prioritized bandwidth-aware repair
// scheduler doing the cleanup. Audits the partition lifecycle and the
// repair ledger on every run.

struct NetFaultTotals {
  std::uint64_t runs = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t link_episodes = 0;
  std::uint64_t unreachable_reads = 0;
  std::uint64_t repairs_enqueued = 0;
  std::uint64_t repair_retries = 0;
};

NetFaultTotals& netfault_totals() {
  static NetFaultTotals t;
  return t;
}

ClusterOptions netfault_soak_options(SchedulerKind scheduler,
                                     PolicyKind policy, std::uint64_t seed) {
  auto opts = corruption_soak_options(scheduler, policy, seed);
  opts.netfault.enabled = true;
  opts.netfault.partition_mtbf_s = 90.0;
  opts.netfault.partition_duration_s = 20.0;
  opts.netfault.link_degrade_mtbf_s = 60.0;
  opts.netfault.link_degrade_duration_s = 30.0;
  opts.netfault.bandwidth_cut = 0.25;
  opts.netfault.latency_inflation = 4.0;
  opts.repair_policy = RepairPolicy::kPrioritized;
  opts.max_repairs_per_uplink = 2;
  opts.repair_retry_backoff = from_seconds(2.0);
  opts.rereplication_interval = from_seconds(1.0);
  return opts;
}

class NetFaultSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(NetFaultSoak, ChurnCorruptionAndPartitionsSurvive) {
  ThrowOnInvariant guard;
  const auto [scheduler, policy, seed] = GetParam();
  const auto opts = netfault_soak_options(scheduler, policy, seed);
  const auto wl = soak_workload(seed);

  Cluster cluster(opts);
  metrics::RunResult result;
  ASSERT_NO_THROW(result = cluster.run(wl))
      << scheduler_name(scheduler) << "/" << policy_name(policy) << " seed "
      << seed;

  // Terminal accounting: every job completed or cleanly failed.
  ASSERT_EQ(result.jobs.size(), wl.jobs.size());
  std::size_t failed = 0;
  for (const auto& jm : result.jobs) {
    EXPECT_GE(jm.completion, jm.arrival);
    if (jm.failed) ++failed;
  }
  EXPECT_EQ(failed, result.failed_jobs);

  // Cross-component consistency — includes the repair-ledger equation and
  // the partitioned-node slot checks.
  EXPECT_NO_THROW(cluster.validate());

  // Partition lifecycle: heals never outnumber episodes, and one-replica
  // exposure windows all closed (open windows are closed at collection, so
  // accounting is total).
  EXPECT_LE(result.partitions_healed, result.partition_episodes);
  // Every mid-transfer timeout fed the retry path: it either re-queued
  // (counted as a retry) or gave up (counted as an abandon).
  EXPECT_LE(result.repair_timeouts,
            result.repair_retries + result.repairs_abandoned);

  // Repair ledger closes out at run end: nothing queued, nothing inflight.
  EXPECT_EQ(result.repairs_enqueued,
            result.repairs_landed + result.repairs_abandoned)
      << scheduler_name(scheduler) << "/" << policy_name(policy) << " seed "
      << seed;

  // Block conservation under partitions: a block advertised nowhere may
  // not physically live on any live node.
  const auto& nn = cluster.name_node();
  for (FileId fid : nn.all_files()) {
    for (BlockId bid : nn.file(fid).blocks) {
      if (!nn.locations(bid).empty()) continue;
      for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
        if (!nn.is_node_alive(static_cast<NodeId>(w))) continue;
        EXPECT_FALSE(cluster.data_node(w).has_any_copy(bid))
            << "block " << bid << " reported lost but alive on node " << w
            << " (" << scheduler_name(scheduler) << "/"
            << policy_name(policy) << " seed " << seed << ")";
      }
    }
  }

  auto& t = netfault_totals();
  ++t.runs;
  t.partitions += result.partition_episodes;
  t.heals += result.partitions_healed;
  t.link_episodes += result.link_degrade_episodes;
  t.unreachable_reads += result.unreachable_reads;
  t.repairs_enqueued += result.repairs_enqueued;
  t.repair_retries += result.repair_retries;
}

INSTANTIATE_TEST_SUITE_P(Schedules, NetFaultSoak,
                         ::testing::ValuesIn(soak_params()));

// The suite itself must cover >= 20 randomized schedules (this holds even
// under --gtest_filter, since it audits the registration, not the runs).
TEST(ChaosSoakAggregate, SuiteCoversAtLeastTwentySchedules) {
  EXPECT_GE(soak_params().size(), 20u);
}

// Runs after every test (global environment teardown) and audits the
// aggregate: across the full soak the randomized schedules must actually
// have exercised churn — transient AND permanent failures, heartbeat
// detections, rejoins. Skipped when the suite was filtered down.
class SoakAggregateAudit : public ::testing::Environment {
 public:
  void TearDown() override {
    const auto& t = totals();
    if (t.runs == 0) return;  // whole suite filtered out
    EXPECT_EQ(t.runs, soak_params().size())
        << "soak suite partially filtered; aggregate not meaningful";
    EXPECT_GT(t.node_failures, 0u);
    EXPECT_GT(t.transient, 0u);
    EXPECT_GT(t.permanent, 0u);
    EXPECT_GT(t.detected, 0u);
    EXPECT_GT(t.rejoins, 0u);

    // The corruption soak must actually have injected, detected, and
    // repaired damage somewhere across the suite.
    const auto& c = corruption_totals();
    if (c.runs == 0) return;  // corruption suite filtered out
    EXPECT_EQ(c.runs, soak_params().size())
        << "corruption soak partially filtered; aggregate not meaningful";
    EXPECT_GT(c.corrupt_replicas, 0u);
    EXPECT_GT(c.corrupt_reads, 0u);
    EXPECT_GT(c.quarantined, 0u);
    EXPECT_GT(c.repaired, 0u);

    // And the straggler soak must actually have degraded nodes, inflated
    // tasks, detected stragglers, and raced clones somewhere.
    const auto& s = straggler_totals();
    if (s.runs == 0) return;  // straggler suite filtered out
    EXPECT_EQ(s.runs, soak_params().size())
        << "straggler soak partially filtered; aggregate not meaningful";
    EXPECT_GT(s.onsets, 0u);
    EXPECT_GT(s.inflations, 0u);
    EXPECT_GT(s.detections, 0u);
    EXPECT_GT(s.clones, 0u);
    EXPECT_GT(s.clone_wins, 0u);

    // And the network-fault soak must actually have partitioned racks,
    // healed them, degraded uplinks, failed reads fast, queued repairs,
    // and backed off retries somewhere across the suite.
    const auto& n = netfault_totals();
    if (n.runs == 0) return;  // netfault suite filtered out
    EXPECT_EQ(n.runs, soak_params().size())
        << "netfault soak partially filtered; aggregate not meaningful";
    EXPECT_GT(n.partitions, 0u);
    EXPECT_GT(n.heals, 0u);
    EXPECT_GT(n.link_episodes, 0u);
    EXPECT_GT(n.unreachable_reads, 0u);
    EXPECT_GT(n.repairs_enqueued, 0u);
    EXPECT_GT(n.repair_retries, 0u);
  }
};

const auto* const kSoakAudit =
    ::testing::AddGlobalTestEnvironment(new SoakAggregateAudit);

}  // namespace
}  // namespace dare::cluster
