#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dare {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TaskExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResultsPreserveSubmissionIdentity) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dare
