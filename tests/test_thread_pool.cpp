#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dare {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TaskExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResultsPreserveSubmissionIdentity) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 2; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a crash
  EXPECT_EQ(counter.load(), 20);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsPendingQueue) {
  // One worker, tasks queued behind a slow head: shutdown must run them
  // all, not drop the backlog.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  for (int i = 0; i < 30; ++i) pool.submit([&counter] { ++counter; });
  pool.shutdown();
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  // Multiple tasks throw; the lowest-index exception must surface, making
  // failure reports deterministic regardless of execution interleaving.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.parallel_for(16, [](std::size_t i) {
        if (i % 3 == 1) {  // indices 1, 4, 7, ...
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "parallel_for should have thrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

TEST(ThreadPool, ParallelForFinishesAllTasksDespiteException) {
  // Even when a task throws, every other task must complete before
  // parallel_for returns — they reference caller state (here `started`).
  ThreadPool pool(4);
  std::atomic<int> started{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&started](std::size_t i) {
                                   ++started;
                                   if (i == 0) {
                                     throw std::runtime_error("early");
                                   }
                                   std::this_thread::sleep_for(
                                       std::chrono::microseconds(100));
                                 }),
               std::runtime_error);
  EXPECT_EQ(started.load(), 64);
}

TEST(ThreadPool, StressManyTinyTasks) {
  // Hammer the queue with tiny tasks from several submitter threads while
  // workers drain it: exercises the mutex/cv handoff under TSan.
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 2500;
  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum, s] {
      std::vector<std::future<void>> futures;
      futures.reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        futures.push_back(pool.submit([&sum, s, i] {
          sum += static_cast<std::int64_t>(s * kPerSubmitter + i);
        }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  const std::int64_t n = kSubmitters * kPerSubmitter;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, FutureOutlivesPool) {
  // A future taken from submit() stays valid after the pool is destroyed:
  // the shared state is owned by the packaged_task/future pair, not the
  // pool.
  std::future<int> f;
  {
    ThreadPool pool(2);
    f = pool.submit([] { return 99; });
  }
  EXPECT_EQ(f.get(), 99);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dare
