// Speculative-execution tests: straggler nodes slow tasks, backup attempts
// rescue them, and the attempt bookkeeping never double-completes a task.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/experiment.h"

namespace dare::cluster {
namespace {

workload::Workload spec_workload(std::size_t jobs = 80,
                                 std::uint64_t seed = 41) {
  workload::WorkloadOptions opts;
  opts.num_jobs = jobs;
  opts.seed = seed;
  opts.catalog.small_files = 20;
  opts.catalog.large_files = 2;
  opts.catalog.large_min_blocks = 6;
  opts.catalog.large_max_blocks = 10;
  return workload::make_wl1(opts);
}

ClusterOptions straggler_options(bool speculation,
                                 double straggler_fraction = 0.25,
                                 double slowdown = 4.0) {
  auto opts = paper_defaults(net::cct_profile(10), SchedulerKind::kFifo,
                             PolicyKind::kVanilla);
  opts.profile.straggler_fraction = straggler_fraction;
  opts.profile.straggler_slowdown = slowdown;
  opts.enable_speculation = speculation;
  return opts;
}

TEST(Speculation, DisabledMeansNoBackupAttempts) {
  const auto result =
      run_once(straggler_options(/*speculation=*/false), spec_workload());
  EXPECT_EQ(result.speculative_launched, 0u);
  EXPECT_EQ(result.speculative_wins, 0u);
  EXPECT_EQ(result.speculative_killed, 0u);
}

TEST(Speculation, LaunchesBackupsUnderStragglers) {
  const auto result =
      run_once(straggler_options(/*speculation=*/true), spec_workload(150));
  EXPECT_GT(result.speculative_launched, 0u);
  // Every launched backup either wins or is killed (or its task's original
  // wins, killing it) — accounting must balance.
  EXPECT_LE(result.speculative_wins, result.speculative_launched);
}

TEST(Speculation, AllJobsCompleteWithSpeculation) {
  const auto wl = spec_workload(150);
  const auto result = run_once(straggler_options(true), wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  for (const auto& jm : result.jobs) {
    EXPECT_GT(jm.completion, jm.arrival);
  }
}

TEST(Speculation, ImprovesTurnaroundUnderSevereStragglers) {
  const auto wl = spec_workload(150);
  const auto without =
      run_once(straggler_options(false, 0.25, 6.0), wl);
  const auto with = run_once(straggler_options(true, 0.25, 6.0), wl);
  // Backup attempts rescue straggler-bound tasks; turnaround improves.
  EXPECT_LT(with.gmtt_s, without.gmtt_s);
}

TEST(Speculation, NoStragglersMeansFewBackups) {
  // With homogeneous nodes the duration spread is small; the threshold of
  // 1.7x the mean is rarely exceeded.
  auto opts = straggler_options(true, 0.0, 1.0);
  const auto busy = run_once(opts, spec_workload(150));
  const auto with_stragglers =
      run_once(straggler_options(true, 0.3, 5.0), spec_workload(150));
  EXPECT_LT(busy.speculative_launched, with_stragglers.speculative_launched);
}

TEST(Speculation, DeterministicAcrossRuns) {
  const auto wl = spec_workload(100);
  const auto opts = straggler_options(true);
  const auto r1 = run_once(opts, wl);
  const auto r2 = run_once(opts, wl);
  EXPECT_DOUBLE_EQ(r1.gmtt_s, r2.gmtt_s);
  EXPECT_EQ(r1.speculative_launched, r2.speculative_launched);
  EXPECT_EQ(r1.speculative_wins, r2.speculative_wins);
  EXPECT_EQ(r1.speculative_killed, r2.speculative_killed);
}

TEST(Speculation, CoexistsWithFailures) {
  auto opts = straggler_options(true);
  opts.failures.push_back({from_seconds(10.0), NodeId{2}});
  opts.failures.push_back({from_seconds(20.0), NodeId{5}});
  const auto wl = spec_workload(120);
  const auto result = run_once(opts, wl);
  EXPECT_EQ(result.jobs.size(), wl.jobs.size());
  EXPECT_EQ(result.blocks_lost, 0u);
}

TEST(Speculation, CoexistsWithDare) {
  auto opts = straggler_options(true);
  opts.policy = PolicyKind::kElephantTrap;
  const auto result = run_once(opts, spec_workload(120));
  EXPECT_GT(result.dynamic_replicas_created, 0u);
  EXPECT_EQ(result.jobs.size(), 120u);
}

}  // namespace
}  // namespace dare::cluster
