#include "workload/swim_import.h"

#include <gtest/gtest.h>

namespace dare::workload {
namespace {

// A hand-written SWIM-style trace: name, submit_s, inter_arrival_s,
// input_bytes, shuffle_bytes, output_bytes.
const char* kTinyTrace =
    "# synthetic sample in SWIM format\n"
    "job0 0     0   134217728   1048576   1048576\n"
    "job1 10    10  268435456   2097152   1048576\n"
    "job2 25    15  134217728   1048576   524288\n"
    "\n"
    "job3 40    15  1073741824  8388608   4194304\n";

SwimImportOptions default_options() {
  SwimImportOptions opts;
  opts.block_size = 128 * kMiB;
  return opts;
}

TEST(SwimImport, ParsesAllRows) {
  const auto wl = import_swim_string(kTinyTrace, default_options());
  EXPECT_EQ(wl.name, "swim-import");
  ASSERT_EQ(wl.jobs.size(), 4u);
  EXPECT_EQ(wl.catalog_spec.block_size, 128 * kMiB);
}

TEST(SwimImport, ArrivalsRebasedToZeroAndScaled) {
  auto opts = default_options();
  opts.time_scale = 0.5;
  const auto wl = import_swim_string(kTinyTrace, opts);
  EXPECT_EQ(wl.jobs[0].arrival, 0);
  EXPECT_EQ(wl.jobs[1].arrival, from_seconds(5.0));   // 10s * 0.5
  EXPECT_EQ(wl.jobs[3].arrival, from_seconds(20.0));  // 40s * 0.5
}

TEST(SwimImport, BlockCountsFromInputBytes) {
  const auto wl = import_swim_string(kTinyTrace, default_options());
  // 128 MiB -> 1 block, 256 MiB -> 2 blocks, 1 GiB -> 8 blocks.
  EXPECT_EQ(wl.catalog[wl.jobs[0].file_index].blocks, 1u);
  EXPECT_EQ(wl.catalog[wl.jobs[1].file_index].blocks, 2u);
  EXPECT_EQ(wl.catalog[wl.jobs[3].file_index].blocks, 8u);
}

TEST(SwimImport, IdenticalInputSizesShareAFile) {
  const auto wl = import_swim_string(kTinyTrace, default_options());
  EXPECT_EQ(wl.jobs[0].file_index, wl.jobs[2].file_index);
  EXPECT_NE(wl.jobs[0].file_index, wl.jobs[1].file_index);
  EXPECT_EQ(wl.catalog.size(), 3u);  // 1-block, 2-block, 8-block files
}

TEST(SwimImport, WindowSelection) {
  auto opts = default_options();
  opts.first_job = 1;
  opts.num_jobs = 2;
  const auto wl = import_swim_string(kTinyTrace, opts);
  ASSERT_EQ(wl.jobs.size(), 2u);
  // Jobs 1 and 2 selected; arrivals rebased to job 1's submit time.
  EXPECT_EQ(wl.jobs[0].arrival, 0);
  EXPECT_EQ(wl.jobs[1].arrival, from_seconds(15.0));
}

TEST(SwimImport, BlockCapApplied) {
  auto opts = default_options();
  opts.max_blocks_per_job = 4;
  const auto wl = import_swim_string(kTinyTrace, opts);
  for (const auto& job : wl.jobs) {
    EXPECT_LE(wl.catalog[job.file_index].blocks, 4u);
  }
}

TEST(SwimImport, ShuffleBytesPreserved) {
  const auto wl = import_swim_string(kTinyTrace, default_options());
  EXPECT_EQ(wl.jobs[1].shuffle_bytes, 2097152);
}

TEST(SwimImport, MalformedRowsRejected) {
  EXPECT_THROW(import_swim_string("job0 0 0 1000\n", default_options()),
               std::invalid_argument);
  EXPECT_THROW(
      import_swim_string("job0 -5 0 1000 0 0\n", default_options()),
      std::invalid_argument);
  EXPECT_THROW(import_swim_string("# only comments\n", default_options()),
               std::invalid_argument);
}

TEST(SwimImport, EmptyWindowRejected) {
  auto opts = default_options();
  opts.first_job = 100;
  EXPECT_THROW(import_swim_string(kTinyTrace, opts), std::invalid_argument);
}

TEST(SwimImport, ImportedWorkloadRunsRoundTrip) {
  // The imported workload must satisfy the Workload invariants used by the
  // cluster (valid file indices, monotonic arrivals).
  const auto wl = import_swim_string(kTinyTrace, default_options());
  for (std::size_t i = 1; i < wl.jobs.size(); ++i) {
    EXPECT_GE(wl.jobs[i].arrival, wl.jobs[i - 1].arrival);
  }
  const auto counts = wl.file_access_counts();  // throws on bad indices
  std::size_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, wl.jobs.size());
}

}  // namespace
}  // namespace dare::workload
